/**
 * @file
 * Service-layer tests: the typed request model (argv and JSON-lines
 * parsers, including the checked count-valued options), the
 * EngineSession front-end contract (warm-cache reuse, containment,
 * exit-code semantics), the response serialization, the serving loop
 * (ordering, malformed lines, admission control, drain), and the
 * multi-client connection supervisor (per-client ordering/routing,
 * fairness quotas with retry hints, misbehaving-client isolation,
 * graceful drain with work in flight).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/json_value.hh"
#include "service/engine_session.hh"
#include "service/serve_loop.hh"
#include "service/supervisor.hh"

using namespace gpumech;

namespace
{

Request
mustParseArgs(const std::vector<std::string> &tokens)
{
    Result<Request> r = requestFromArgs(ArgParser(tokens));
    EXPECT_TRUE(r.ok()) << r.status().toString();
    return r.ok() ? std::move(r).value() : Request{};
}

StatusCode
argsCode(const std::vector<std::string> &tokens)
{
    Result<Request> r = requestFromArgs(ArgParser(tokens));
    return r.ok() ? StatusCode::Ok : r.status().code();
}

StatusCode
jsonCode(const std::string &line)
{
    Result<Request> r = requestFromJson(line);
    return r.ok() ? StatusCode::Ok : r.status().code();
}

TEST(RequestFromArgs, ParsesModelWithOverrides)
{
    Request req = mustParseArgs({"model", "vectorAdd", "--warps", "16",
                                 "--cores", "8", "--mshrs", "64",
                                 "--bw", "256", "--policy", "gto",
                                 "--level", "mshr", "--model-sfu",
                                 "--json"});
    EXPECT_EQ(req.verb, Verb::Model);
    EXPECT_EQ(req.kernel, "vectorAdd");
    EXPECT_EQ(req.config.warpsPerCore, 16u);
    EXPECT_EQ(req.config.numCores, 8u);
    EXPECT_EQ(req.config.numMshrs, 64u);
    EXPECT_DOUBLE_EQ(req.config.dramBandwidthGBs, 256.0);
    EXPECT_EQ(req.policy, SchedulingPolicy::GreedyThenOldest);
    EXPECT_EQ(req.level, ModelLevel::MT_MSHR);
    EXPECT_TRUE(req.modelSfu);
    EXPECT_TRUE(req.json);
}

TEST(RequestFromArgs, RejectsNonPositiveCounts)
{
    // The old getUint would strtoul-wrap "-1" to ~4e9; the checked
    // parser must reject zero, negatives, and junk for every
    // count-valued option (the --jobs case used to try to spawn
    // billions of threads).
    for (const char *flag : {"--warps", "--cores", "--mshrs", "--jobs"}) {
        EXPECT_EQ(argsCode({"model", "vectorAdd", flag, "0"}),
                  StatusCode::InvalidArgument)
            << flag << " 0";
        EXPECT_EQ(argsCode({"model", "vectorAdd", flag, "-1"}),
                  StatusCode::InvalidArgument)
            << flag << " -1";
        EXPECT_EQ(argsCode({"model", "vectorAdd", flag, "abc"}),
                  StatusCode::InvalidArgument)
            << flag << " abc";
        EXPECT_EQ(argsCode({"model", "vectorAdd", flag, "5000000000"}),
                  StatusCode::InvalidArgument)
            << flag << " overflow";
    }
    // Absent flags still mean "default".
    EXPECT_EQ(argsCode({"model", "vectorAdd"}), StatusCode::Ok);
}

TEST(RequestFromArgs, RejectsBadEnumsAndSpecs)
{
    EXPECT_EQ(argsCode({"model", "vectorAdd", "--policy", "x"}),
              StatusCode::InvalidArgument);
    EXPECT_EQ(argsCode({"model", "vectorAdd", "--level", "x"}),
              StatusCode::InvalidArgument);
    EXPECT_EQ(argsCode({"suite", "micro", "--inject", "nosite"}),
              StatusCode::InvalidArgument);
    EXPECT_EQ(argsCode({"suite", "micro", "--inject", "k:parse:0"}),
              StatusCode::InvalidArgument);
    EXPECT_EQ(argsCode({"sweep", "vectorAdd", "--param", "bogus"}),
              StatusCode::InvalidArgument);
    EXPECT_EQ(argsCode({"bogus-command"}), StatusCode::NotFound);
    EXPECT_EQ(argsCode({"model"}), StatusCode::InvalidArgument);
}

TEST(RequestFromArgs, MalformedNumericOptionsAreInvalidArgument)
{
    // The old getDouble called fatal() on junk: one "--bw fast" took
    // the whole process down. Every numeric option must now come back
    // as a parse error the front-end owns.
    EXPECT_EQ(argsCode({"model", "vectorAdd", "--bw", "fast"}),
              StatusCode::InvalidArgument);
    EXPECT_EQ(argsCode({"model", "vectorAdd", "--bw", "inf"}),
              StatusCode::InvalidArgument);
    EXPECT_EQ(argsCode({"model", "vectorAdd", "--bw", "nan"}),
              StatusCode::InvalidArgument);
    EXPECT_EQ(argsCode({"sweep", "vectorAdd", "--mrc-rate", "lots",
                        "--sweep-mode", "mrc"}),
              StatusCode::InvalidArgument);
    EXPECT_EQ(argsCode({"tune", "vectorAdd", "--max-cost", "cheap"}),
              StatusCode::InvalidArgument);
    EXPECT_EQ(argsCode({"tune", "vectorAdd", "--max-cpi", "-1"}),
              StatusCode::InvalidArgument);
}

TEST(RequestFromArgs, ParsesTune)
{
    Request req = mustParseArgs(
        {"tune", "vectorAdd", "--dims", "mshrs,bw",
         "--mshrs-values", "16,32,64", "--objective", "cpi-cost",
         "--restarts", "2", "--seed", "7", "--max-cost", "3.5",
         "--cost-weights", "mshrs=0.2,bw=1", "--allow-approx"});
    EXPECT_EQ(req.verb, Verb::Tune);
    EXPECT_EQ(req.kernel, "vectorAdd");
    ASSERT_EQ(req.tune.dims.size(), 2u);
    EXPECT_EQ(req.tune.dims[0].name, "mshrs");
    EXPECT_EQ(req.tune.dims[0].values,
              (std::vector<double>{16, 32, 64}));
    EXPECT_EQ(req.tune.dims[1].name, "bw");
    EXPECT_TRUE(req.tune.dims[1].values.empty()); // default ladder
    EXPECT_EQ(req.tune.objective, TuneObjective::MinCpiCost);
    EXPECT_EQ(req.tune.restarts, 2u);
    EXPECT_EQ(req.tune.seed, 7u);
    EXPECT_DOUBLE_EQ(req.tune.constraints.maxCost, 3.5);
    EXPECT_DOUBLE_EQ(req.tune.cost.weights.at("mshrs"), 0.2);
    EXPECT_DOUBLE_EQ(req.tune.cost.weights.at("bw"), 1.0);
    EXPECT_TRUE(req.tune.allowApprox);
    EXPECT_EQ(req.tune.mode, SweepMode::Mrc); // the default

    EXPECT_EQ(argsCode({"tune"}), StatusCode::InvalidArgument);
    EXPECT_EQ(argsCode({"tune", "vectorAdd", "--dims", "voltage"}),
              StatusCode::InvalidArgument);
    EXPECT_EQ(argsCode({"tune", "vectorAdd", "--objective", "best"}),
              StatusCode::InvalidArgument);
    EXPECT_EQ(argsCode({"tune", "vectorAdd", "--cost-weights",
                        "mshrs"}),
              StatusCode::InvalidArgument);
    EXPECT_EQ(argsCode({"tune", "vectorAdd", "--cost-weights",
                        "mshrs=-1"}),
              StatusCode::InvalidArgument);
}

TEST(RequestFromArgs, SuiteAliasAndIsolation)
{
    Request req = mustParseArgs({"--suite", "micro",
                                 "--kernel-timeout-ms", "250",
                                 "--inject",
                                 "micro_stream:collect:2:10"});
    EXPECT_EQ(req.verb, Verb::Suite);
    EXPECT_EQ(req.suite, "micro");
    EXPECT_EQ(req.timeoutMs, 250u);
    ASSERT_NE(req.faultPlan, nullptr);
    ASSERT_EQ(req.faultPlan->injections().size(), 1u);
    EXPECT_EQ(req.faultPlan->injections()[0].kernel, "micro_stream");
    EXPECT_EQ(req.faultPlan->injections()[0].site,
              FaultSite::Collect);
    EXPECT_EQ(req.faultPlan->injections()[0].attempt, 2u);
    EXPECT_EQ(req.faultPlan->injections()[0].stallMs, 10u);
}

TEST(RequestFromJson, ParsesDocumentedShape)
{
    Result<Request> r = requestFromJson(
        R"({"cmd":"model","kernel":"vectorAdd",)"
        R"("config":{"warps":16,"cores":8,"mshrs":64,"bw":256},)"
        R"("policy":"gto","level":"band","model_sfu":true,)"
        R"("timeout_ms":500,"jobs":2,"json":false,"id":"req-1"})");
    ASSERT_TRUE(r.ok()) << r.status().toString();
    const Request &req = r.value();
    EXPECT_EQ(req.verb, Verb::Model);
    EXPECT_EQ(req.id, "req-1");
    EXPECT_EQ(req.config.warpsPerCore, 16u);
    EXPECT_EQ(req.config.numCores, 8u);
    EXPECT_DOUBLE_EQ(req.config.dramBandwidthGBs, 256.0);
    EXPECT_EQ(req.policy, SchedulingPolicy::GreedyThenOldest);
    EXPECT_TRUE(req.modelSfu);
    EXPECT_EQ(req.timeoutMs, 500u);
    EXPECT_EQ(req.jobs, 2u);
}

TEST(RequestFromJson, RejectsBadRequests)
{
    EXPECT_EQ(jsonCode("not json"), StatusCode::ParseError);
    EXPECT_EQ(jsonCode("[1,2]"), StatusCode::InvalidArgument);
    EXPECT_EQ(jsonCode("{}"), StatusCode::InvalidArgument);
    EXPECT_EQ(jsonCode(R"({"cmd":"bogus"})"), StatusCode::NotFound);
    EXPECT_EQ(jsonCode(R"({"cmd":"model"})"),
              StatusCode::InvalidArgument); // no kernel
    EXPECT_EQ(jsonCode(R"({"cmd":"model","kernel":1})"),
              StatusCode::InvalidArgument);
    EXPECT_EQ(
        jsonCode(R"({"cmd":"model","kernel":"k","config":{"warps":0}})"),
        StatusCode::InvalidArgument);
    EXPECT_EQ(jsonCode(
                  R"({"cmd":"model","kernel":"k","config":{"warps":-4}})"),
              StatusCode::InvalidArgument);
    EXPECT_EQ(jsonCode(
                  R"({"cmd":"model","kernel":"k","config":{"warps":1.5}})"),
              StatusCode::InvalidArgument);
    EXPECT_EQ(jsonCode(R"({"cmd":"model","kernel":"k","timeout_ms":-1})"),
              StatusCode::InvalidArgument);
    EXPECT_EQ(jsonCode(R"({"cmd":"pack","paths":["only-one"]})"),
              StatusCode::InvalidArgument);
    EXPECT_EQ(jsonCode(R"({"cmd":"sweep","kernel":"k","values":["x"]})"),
              StatusCode::InvalidArgument);
}

TEST(RequestFromJson, ParsesTune)
{
    Result<Request> r = requestFromJson(
        R"({"cmd":"tune","kernel":"vectorAdd",)"
        R"("dims":["mshrs",{"name":"bw","values":[96,192]}],)"
        R"("objective":"cpi-cost","restarts":3,"seed":9,)"
        R"("max_cost":4,"cost_weights":{"bw":0.75},)"
        R"("allow_approx":true,"sweep_mode":"rerun"})");
    ASSERT_TRUE(r.ok()) << r.status().toString();
    const Request &req = r.value();
    EXPECT_EQ(req.verb, Verb::Tune);
    ASSERT_EQ(req.tune.dims.size(), 2u);
    EXPECT_EQ(req.tune.dims[0].name, "mshrs");
    EXPECT_TRUE(req.tune.dims[0].values.empty());
    EXPECT_EQ(req.tune.dims[1].name, "bw");
    EXPECT_EQ(req.tune.dims[1].values, (std::vector<double>{96, 192}));
    EXPECT_EQ(req.tune.objective, TuneObjective::MinCpiCost);
    EXPECT_EQ(req.tune.restarts, 3u);
    EXPECT_EQ(req.tune.seed, 9u);
    EXPECT_DOUBLE_EQ(req.tune.constraints.maxCost, 4.0);
    EXPECT_DOUBLE_EQ(req.tune.cost.weights.at("bw"), 0.75);
    EXPECT_TRUE(req.tune.allowApprox);
    EXPECT_EQ(req.tune.mode, SweepMode::Rerun);

    // Defaults: dims filled, mrc mode.
    Result<Request> d =
        requestFromJson(R"({"cmd":"tune","kernel":"vectorAdd"})");
    ASSERT_TRUE(d.ok()) << d.status().toString();
    EXPECT_EQ(d.value().tune.dims.size(), 4u);
    EXPECT_EQ(d.value().tune.mode, SweepMode::Mrc);

    EXPECT_EQ(jsonCode(R"({"cmd":"tune"})"),
              StatusCode::InvalidArgument); // no kernel
    EXPECT_EQ(jsonCode(R"({"cmd":"tune","kernel":"k","dims":["x"]})"),
              StatusCode::InvalidArgument);
    EXPECT_EQ(jsonCode(R"({"cmd":"tune","kernel":"k",)"
                       R"("cost_weights":{"mshrs":"heavy"}})"),
              StatusCode::InvalidArgument);
    EXPECT_EQ(jsonCode(R"({"cmd":"tune","kernel":"k",)"
                       R"("mrc_rate":1e999})"),
              StatusCode::InvalidArgument); // inf rate
}

TEST(ResponseToJsonLine, RoundTripsThroughParser)
{
    Response resp;
    resp.status = Status(StatusCode::NotFound, "unknown workload: x");
    resp.exitCode = 1;
    resp.output = "line \"quoted\"\n";
    resp.stats.kernels = 3;
    resp.stats.failed = 1;
    resp.stats.profilerHits = 2;
    resp.stats.wallMs = 1.25;

    Result<JsonValue> parsed =
        parseJson(responseToJsonLine(resp, "id-1", 7, true));
    ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
    const JsonValue &v = parsed.value();
    EXPECT_EQ(v.find("id")->string(), "id-1");
    EXPECT_DOUBLE_EQ(v.find("seq")->number(), 7.0);
    EXPECT_FALSE(v.find("ok")->boolean());
    EXPECT_EQ(v.find("status")->string(), "not_found");
    EXPECT_EQ(v.find("error")->string(), "unknown workload: x");
    EXPECT_DOUBLE_EQ(v.find("kernels")->number(), 3.0);
    EXPECT_DOUBLE_EQ(v.find("failed")->number(), 1.0);
    EXPECT_DOUBLE_EQ(v.find("cache")->find("profiler_hits")->number(),
                     2.0);
    EXPECT_EQ(v.find("output")->string(), "line \"quoted\"\n");

    // include_output=false drops the report but keeps the stats.
    Result<JsonValue> bare =
        parseJson(responseToJsonLine(resp, "id-1", 7, false));
    ASSERT_TRUE(bare.ok());
    EXPECT_EQ(bare.value().find("output"), nullptr);
}

Request
modelRequest(const std::string &kernel)
{
    Request req;
    req.verb = Verb::Model;
    req.kernel = kernel;
    req.config.warpsPerCore = 4;
    req.config.numCores = 2;
    return req;
}

TEST(EngineSession, WarmRepeatSkipsInputRebuild)
{
    EngineSession engine;
    Response first = engine.handle(modelRequest("micro_stream"));
    ASSERT_TRUE(first.ok()) << first.status.toString();
    EXPECT_EQ(first.exitCode, 0);
    EXPECT_GT(first.stats.collectorMisses, 0u);
    EXPECT_GT(first.stats.profilerMisses, 0u);

    Response second = engine.handle(modelRequest("micro_stream"));
    ASSERT_TRUE(second.ok());
    // The warm request re-evaluates the model only: no new trace /
    // collector / profiler artifacts, and the same rendered bytes.
    EXPECT_EQ(second.stats.traceMisses, 0u);
    EXPECT_EQ(second.stats.collectorMisses, 0u);
    EXPECT_EQ(second.stats.profilerMisses, 0u);
    EXPECT_GT(second.stats.profilerHits, 0u);
    EXPECT_EQ(second.output, first.output);
    EXPECT_EQ(engine.requestsHandled(), 2u);
}

TEST(EngineSession, UnknownTargetsFailClosed)
{
    EngineSession engine;
    Response resp = engine.handle(modelRequest("no_such_kernel"));
    EXPECT_FALSE(resp.ok());
    EXPECT_EQ(resp.status.code(), StatusCode::NotFound);
    EXPECT_EQ(resp.exitCode, 1);

    Request suite;
    suite.verb = Verb::Suite;
    suite.suite = "no_such_suite";
    Response sresp = engine.handle(suite);
    EXPECT_FALSE(sresp.ok());
    EXPECT_EQ(sresp.exitCode, 1);
}

TEST(EngineSession, SuitePartialFailureKeepsExitCodeTwo)
{
    EngineSession engine;
    Request req;
    req.verb = Verb::Suite;
    req.suite = "micro";
    req.predict = true;
    req.config.warpsPerCore = 4;
    req.config.numCores = 2;
    auto plan =
        parseInjectSpec("micro_stream:collect").value();
    req.faultPlan = plan;
    Response resp = engine.handle(req);
    EXPECT_TRUE(resp.ok()); // partial success still renders a report
    EXPECT_EQ(resp.exitCode, 2);
    EXPECT_EQ(resp.stats.failed, 1u);
    EXPECT_GT(resp.stats.kernels, 1u);
    EXPECT_NE(resp.output.find("FAILED"), std::string::npos);
    EXPECT_NE(resp.output.find("fault_injected"), std::string::npos);
}

TEST(EngineSession, PerRequestDeadlineContained)
{
    EngineSession engine;
    Request req;
    req.verb = Verb::Suite;
    req.suite = "micro";
    req.predict = true;
    req.config.warpsPerCore = 4;
    req.config.numCores = 2;
    req.timeoutMs = 30;
    req.faultPlan =
        parseInjectSpec("micro_stream:collect:1:500").value();
    Response resp = engine.handle(req);
    EXPECT_EQ(resp.exitCode, 2);
    EXPECT_NE(resp.output.find("deadline_exceeded"),
              std::string::npos)
        << resp.output;
}

TEST(EngineSession, PingAndStats)
{
    EngineSession engine;
    Request ping;
    ping.verb = Verb::Ping;
    Response presp = engine.handle(ping);
    EXPECT_TRUE(presp.ok());
    EXPECT_EQ(presp.output, "pong\n");

    engine.handle(modelRequest("micro_stream"));
    Request stats;
    stats.verb = Verb::Stats;
    Response sresp = engine.handle(stats);
    ASSERT_TRUE(sresp.ok());
    Result<JsonValue> doc = parseJson(sresp.output);
    ASSERT_TRUE(doc.ok()) << sresp.output;
    EXPECT_GE(doc.value().find("requests")->number(), 2.0);
    EXPECT_GE(doc.value()
                  .find("cache")
                  ->find("profiler_misses")
                  ->number(),
              1.0);
}

TEST(ServeLoop, AnswersEveryLineInOrder)
{
    resetServeDrain();
    EngineSession engine;
    std::istringstream in(
        R"({"cmd":"ping","id":"a"})" "\n"
        "not json\n"
        R"({"cmd":"model","kernel":"micro_stream",)"
        R"("config":{"warps":4,"cores":2},"id":"b"})" "\n"
        R"({"cmd":"model","kernel":"micro_stream",)"
        R"("config":{"warps":4,"cores":2},"id":"c"})" "\n");
    std::ostringstream out;
    ServeOptions options;
    options.maxBatch = 1; // serial dispatch: fully ordered output
    ServeSummary summary = serveLines(engine, in, out, options);

    EXPECT_EQ(summary.received, 4u);
    EXPECT_EQ(summary.evaluated, 3u);
    EXPECT_EQ(summary.malformed, 1u);
    EXPECT_EQ(summary.shed, 0u);
    EXPECT_EQ(summary.failed, 0u);

    std::istringstream lines(out.str());
    std::string line;
    std::uint64_t last_seq = 0;
    std::size_t count = 0;
    while (std::getline(lines, line)) {
        Result<JsonValue> doc = parseJson(line);
        ASSERT_TRUE(doc.ok()) << line;
        std::uint64_t seq =
            static_cast<std::uint64_t>(doc.value().find("seq")->number());
        EXPECT_GT(seq, last_seq); // maxBatch=1 keeps strict seq order
        last_seq = seq;
        ++count;
    }
    EXPECT_EQ(count, 4u);

    // The warm model request reused the first one's artifacts.
    EXPECT_EQ(engine.session().cache.profilerMisses(), 1u);
    EXPECT_GE(engine.session().cache.profilerHits(), 1u);
}

TEST(ServeLoop, MalformedNumericsDoNotKillTheDaemon)
{
    // Regression: bad numeric fields used to reach fatal() via the
    // unchecked getDouble, killing the whole serving process. Each of
    // these must answer one error line and the loop must keep serving
    // — the trailing ping proves the daemon survived.
    resetServeDrain();
    EngineSession engine;
    std::istringstream in(
        R"({"cmd":"model","kernel":"micro_stream",)"
        R"("config":{"bw":-5},"id":"a"})" "\n"
        R"({"cmd":"sweep","kernel":"micro_stream",)"
        R"("sweep_mode":"mrc","mrc_rate":1e999,"id":"b"})" "\n"
        R"({"cmd":"tune","kernel":"micro_stream",)"
        R"("max_cost":-2,"id":"c"})" "\n"
        R"({"cmd":"ping","id":"d"})" "\n");
    std::ostringstream out;
    ServeOptions options;
    options.maxBatch = 1;
    ServeSummary summary = serveLines(engine, in, out, options);

    EXPECT_EQ(summary.received, 4u);

    std::istringstream lines(out.str());
    std::string line;
    std::map<std::string, bool> ok_by_id;
    while (std::getline(lines, line)) {
        Result<JsonValue> doc = parseJson(line);
        ASSERT_TRUE(doc.ok()) << line;
        ok_by_id[doc.value().find("id")->string()] =
            doc.value().find("ok")->boolean();
    }
    ASSERT_EQ(ok_by_id.size(), 4u);
    EXPECT_FALSE(ok_by_id["a"]);
    EXPECT_FALSE(ok_by_id["b"]);
    EXPECT_FALSE(ok_by_id["c"]);
    EXPECT_TRUE(ok_by_id["d"]); // still alive
}

TEST(ServeLoop, ShedsWhenQueueIsFull)
{
    resetServeDrain();
    EngineSession engine;
    // First request stalls 300ms inside the engine (injected fault),
    // with a queue bound of 1 and serial dispatch. The reader drains
    // the remaining lines while the stall holds the dispatcher, so at
    // least one later request must be shed.
    std::ostringstream feed;
    feed << R"({"cmd":"suite","suite":"micro","predict":true,)"
         << R"("config":{"warps":4,"cores":2},)"
         << R"("inject":"micro_stream:collect:1:300","id":"slow"})"
         << "\n";
    for (int i = 0; i < 4; ++i)
        feed << R"({"cmd":"ping","id":"p)" << i << R"("})" << "\n";
    std::istringstream in(feed.str());
    std::ostringstream out;
    ServeOptions options;
    options.maxQueue = 1;
    options.maxBatch = 1;
    ServeSummary summary = serveLines(engine, in, out, options);

    EXPECT_EQ(summary.received, 5u);
    EXPECT_GE(summary.shed, 1u);
    EXPECT_EQ(summary.evaluated + summary.shed, 5u);

    // Every shed response says so, with ResourceExhausted.
    std::istringstream lines(out.str());
    std::string line;
    std::size_t shed_seen = 0, responses = 0;
    while (std::getline(lines, line)) {
        Result<JsonValue> doc = parseJson(line);
        ASSERT_TRUE(doc.ok()) << line;
        ++responses;
        const JsonValue *shed = doc.value().find("shed");
        if (shed != nullptr && shed->boolean()) {
            ++shed_seen;
            EXPECT_EQ(doc.value().find("status")->string(),
                      "resource_exhausted");
            EXPECT_FALSE(doc.value().find("ok")->boolean());
        }
    }
    EXPECT_EQ(responses, 5u);
    EXPECT_EQ(shed_seen, summary.shed);
}

TEST(ServeLoop, DrainFlagStopsIntake)
{
    resetServeDrain();
    requestServeDrain();
    EXPECT_TRUE(serveDraining());
    EngineSession engine;
    std::istringstream in(R"({"cmd":"ping"})" "\n");
    std::ostringstream out;
    ServeSummary summary = serveLines(engine, in, out);
    // Intake stopped before reading anything.
    EXPECT_EQ(summary.received, 0u);
    EXPECT_TRUE(out.str().empty());
    resetServeDrain();
}

// ---------------------------------------------------------------------
// Connection supervisor (socket mode)
// ---------------------------------------------------------------------

/** Fresh socket path per server (parallel ctest shards). */
std::string
freshSocketPath()
{
    static int counter = 0;
    std::ostringstream os;
    os << "/tmp/gm_sup_" << ::getpid() << "_" << ++counter << ".sock";
    return os.str();
}

/** serveSupervised on a background thread, drained on destruction. */
struct SupervisedServer
{
    explicit SupervisedServer(const SupervisorOptions &options)
        : path(freshSocketPath())
    {
        resetServeDrain();
        thread = std::thread([this, options] {
            result = serveSupervised(engine, path, options);
        });
    }

    ~SupervisedServer() { stop(); }

    /** Request a drain and wait for the run's totals. */
    SupervisorSummary
    stop()
    {
        if (thread.joinable()) {
            requestServeDrain();
            thread.join();
            resetServeDrain();
            EXPECT_TRUE(result.ok()) << result.status().toString();
        }
        return result.ok() ? result.value() : SupervisorSummary{};
    }

    std::string path;
    EngineSession engine;
    std::thread thread;
    Result<SupervisorSummary> result{SupervisorSummary{}};
};

/** Raw blocking Unix-socket client with line-buffered reads. */
struct SocketClient
{
    ~SocketClient() { disconnect(); }

    /** Connect, retrying while the server is still binding. */
    bool
    connectTo(const std::string &path)
    {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                      path.c_str());
        for (int attempt = 0; attempt < 500; ++attempt) {
            fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
            if (fd < 0)
                return false;
            if (::connect(fd,
                          reinterpret_cast<const sockaddr *>(&addr),
                          sizeof(addr)) == 0)
                return true;
            ::close(fd);
            fd = -1;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
        return false;
    }

    bool
    sendLine(const std::string &line)
    {
        std::string data = line + "\n";
        return sendRaw(data);
    }

    bool
    sendRaw(const std::string &data)
    {
        std::size_t off = 0;
        while (off < data.size()) {
            ssize_t n = ::send(fd, data.data() + off,
                               data.size() - off, MSG_NOSIGNAL);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            off += static_cast<std::size_t>(n);
        }
        return true;
    }

    /** Next response line; false on EOF or after @p timeout_ms. */
    bool
    readLine(std::string &line, int timeout_ms = 10000)
    {
        auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
        for (;;) {
            std::size_t nl = buffer.find('\n');
            if (nl != std::string::npos) {
                line = buffer.substr(0, nl);
                buffer.erase(0, nl + 1);
                return true;
            }
            if (std::chrono::steady_clock::now() >= deadline)
                return false;
            struct pollfd pfd = {fd, POLLIN, 0};
            int rc = ::poll(&pfd, 1, 100);
            if (rc <= 0)
                continue;
            char chunk[4096];
            ssize_t n = ::read(fd, chunk, sizeof chunk);
            if (n > 0) {
                buffer.append(chunk, static_cast<std::size_t>(n));
                continue;
            }
            if (n == 0)
                return false; // EOF
            if (errno != EINTR)
                return false;
        }
    }

    /** Parse the next response line as JSON. */
    bool
    readJson(JsonValue &doc, int timeout_ms = 10000)
    {
        std::string line;
        if (!readLine(line, timeout_ms))
            return false;
        Result<JsonValue> parsed = parseJson(line);
        EXPECT_TRUE(parsed.ok()) << line;
        if (!parsed.ok())
            return false;
        doc = std::move(parsed).value();
        return true;
    }

    void
    disconnect()
    {
        if (fd >= 0)
            ::close(fd);
        fd = -1;
    }

    int fd = -1;
    std::string buffer;
};

TEST(Supervisor, ConcurrentClientsKeepOrderAndRouting)
{
    SupervisorOptions options;
    options.dispatchers = 4;
    options.maxQueue = 128;   // every request fits: nothing sheds,
    options.maxInflight = 32; // so ordering/routing is fully checked
    SupervisedServer server(options);

    constexpr int kClients = 4, kRequests = 10;
    SocketClient clients[kClients];
    for (int c = 0; c < kClients; ++c)
        ASSERT_TRUE(clients[c].connectTo(server.path)) << c;

    // Interleave sends across clients so requests from different
    // connections are in flight together.
    for (int r = 0; r < kRequests; ++r) {
        for (int c = 0; c < kClients; ++c) {
            std::ostringstream req;
            req << R"({"cmd":"ping","id":"c)" << c << "-" << r
                << R"("})";
            ASSERT_TRUE(clients[c].sendLine(req.str()));
        }
    }

    // Every client gets exactly its own responses, seq 1..N in order.
    for (int c = 0; c < kClients; ++c) {
        for (int r = 0; r < kRequests; ++r) {
            JsonValue doc;
            ASSERT_TRUE(clients[c].readJson(doc)) << c << "/" << r;
            EXPECT_EQ(doc.find("seq")->number(), r + 1.0);
            std::ostringstream want;
            want << "c" << c << "-" << r;
            EXPECT_EQ(doc.find("id")->string(), want.str());
            EXPECT_TRUE(doc.find("ok")->boolean());
        }
    }

    for (auto &client : clients)
        client.disconnect();
    SupervisorSummary summary = server.stop();
    EXPECT_EQ(summary.connections, 4u);
    EXPECT_EQ(summary.received, 40u);
    EXPECT_EQ(summary.evaluated, 40u);
    EXPECT_EQ(summary.shed, 0u);
    EXPECT_EQ(summary.dropped, 0u);
}

TEST(Supervisor, QuotaShedsWithRetryHint)
{
    SupervisorOptions options;
    options.dispatchers = 1;
    options.maxInflight = 1;
    SupervisedServer server(options);

    SocketClient client;
    ASSERT_TRUE(client.connectTo(server.path));
    // One slow request (300ms injected stall) fills the quota; pings
    // sent behind it must be shed with a back-off hint.
    ASSERT_TRUE(client.sendLine(
        R"({"cmd":"suite","suite":"micro","predict":true,)"
        R"("config":{"warps":4,"cores":2},)"
        R"("inject":"micro_stream:collect:1:300","id":"slow"})"));
    constexpr int kPings = 5;
    for (int i = 0; i < kPings; ++i)
        ASSERT_TRUE(client.sendLine(R"({"cmd":"ping","id":"p"})"));

    std::size_t shed_seen = 0;
    double last_seq = 0.0;
    for (int i = 0; i < 1 + kPings; ++i) {
        JsonValue doc;
        ASSERT_TRUE(client.readJson(doc)) << i;
        EXPECT_GT(doc.find("seq")->number(), last_seq);
        last_seq = doc.find("seq")->number();
        const JsonValue *shed = doc.find("shed");
        if (shed != nullptr && shed->boolean()) {
            ++shed_seen;
            EXPECT_EQ(doc.find("status")->string(),
                      "resource_exhausted");
            const JsonValue *hint = doc.find("retry_after_ms");
            ASSERT_NE(hint, nullptr);
            EXPECT_GE(hint->number(), 1.0);
        }
    }
    EXPECT_GE(shed_seen, 1u);

    client.disconnect();
    SupervisorSummary summary = server.stop();
    EXPECT_EQ(summary.shed, shed_seen);
    EXPECT_EQ(summary.evaluated + summary.shed, 1u + kPings);
}

TEST(Supervisor, GarbageLineAnswersErrorAndKeepsConnection)
{
    SupervisedServer server(SupervisorOptions{});
    SocketClient client;
    ASSERT_TRUE(client.connectTo(server.path));
    ASSERT_TRUE(client.sendLine("this is not json"));
    ASSERT_TRUE(client.sendLine(R"({"cmd":"ping","id":"after"})"));

    JsonValue doc;
    ASSERT_TRUE(client.readJson(doc));
    EXPECT_EQ(doc.find("seq")->number(), 1.0);
    EXPECT_FALSE(doc.find("ok")->boolean());
    ASSERT_TRUE(client.readJson(doc));
    EXPECT_EQ(doc.find("seq")->number(), 2.0);
    EXPECT_TRUE(doc.find("ok")->boolean());
    EXPECT_EQ(doc.find("id")->string(), "after");

    client.disconnect();
    SupervisorSummary summary = server.stop();
    EXPECT_EQ(summary.malformed, 1u);
    EXPECT_EQ(summary.evaluated, 1u);
}

TEST(Supervisor, OversizedLineEvictsOnlyThatClient)
{
    SupervisorOptions options;
    options.maxLineBytes = 64;
    SupervisedServer server(options);

    SocketClient bad, good;
    ASSERT_TRUE(bad.connectTo(server.path));
    ASSERT_TRUE(good.connectTo(server.path));

    // 1 KiB with no terminator blows the 64-byte cap mid-line.
    ASSERT_TRUE(bad.sendRaw(std::string(1024, 'x')));
    JsonValue doc;
    ASSERT_TRUE(bad.readJson(doc));
    EXPECT_FALSE(doc.find("ok")->boolean());
    EXPECT_NE(doc.find("error")->string().find("byte cap"),
              std::string::npos);
    std::string line;
    EXPECT_FALSE(bad.readLine(line, 3000)); // then EOF: evicted

    // The other client is untouched.
    ASSERT_TRUE(good.sendLine(R"({"cmd":"ping","id":"ok"})"));
    ASSERT_TRUE(good.readJson(doc));
    EXPECT_TRUE(doc.find("ok")->boolean());

    good.disconnect();
    SupervisorSummary summary = server.stop();
    EXPECT_EQ(summary.oversized, 1u);
    EXPECT_EQ(summary.connections, 2u);
}

TEST(Supervisor, MidStreamDisconnectLeavesServerHealthy)
{
    SupervisedServer server(SupervisorOptions{});

    {
        SocketClient vanishing;
        ASSERT_TRUE(vanishing.connectTo(server.path));
        // A request whose response will have nowhere to go, plus a
        // partial line cut off mid-JSON.
        ASSERT_TRUE(vanishing.sendLine(R"({"cmd":"ping","id":"v"})"));
        ASSERT_TRUE(vanishing.sendRaw(R"({"cmd":"mo)"));
        vanishing.disconnect();
    }

    SocketClient survivor;
    ASSERT_TRUE(survivor.connectTo(server.path));
    ASSERT_TRUE(survivor.sendLine(R"({"cmd":"ping","id":"s"})"));
    JsonValue doc;
    ASSERT_TRUE(survivor.readJson(doc));
    EXPECT_TRUE(doc.find("ok")->boolean());
    EXPECT_EQ(doc.find("id")->string(), "s");

    survivor.disconnect();
    SupervisorSummary summary = server.stop();
    EXPECT_EQ(summary.connections, 2u);
}

TEST(Supervisor, HealthReportsSupervisorState)
{
    SupervisedServer server(SupervisorOptions{});
    SocketClient client;
    ASSERT_TRUE(client.connectTo(server.path));
    ASSERT_TRUE(client.sendLine(R"({"cmd":"health","id":"h"})"));

    JsonValue doc;
    ASSERT_TRUE(client.readJson(doc));
    EXPECT_TRUE(doc.find("ok")->boolean());
    const JsonValue *output = doc.find("output");
    ASSERT_NE(output, nullptr);
    Result<JsonValue> inner = parseJson(output->string());
    ASSERT_TRUE(inner.ok()) << output->string();
    EXPECT_TRUE(inner.value().find("healthy")->boolean());
    EXPECT_FALSE(inner.value().find("draining")->boolean());
    EXPECT_GE(inner.value().find("connections")->number(), 1.0);

    client.disconnect();
    server.stop();
}

TEST(Supervisor, HealthPayloadSurvivesNoOutput)
{
    // Health/stats answers ARE their output: --no-output must strip
    // rendered reports from normal responses but not hollow out the
    // operational protocol into empty success lines.
    SupervisorOptions options;
    options.includeOutput = false;
    SupervisedServer server(options);
    SocketClient client;
    ASSERT_TRUE(client.connectTo(server.path));

    ASSERT_TRUE(client.sendLine(R"({"cmd":"health","id":"h"})"));
    JsonValue doc;
    ASSERT_TRUE(client.readJson(doc));
    const JsonValue *output = doc.find("output");
    ASSERT_NE(output, nullptr);
    Result<JsonValue> inner = parseJson(output->string());
    ASSERT_TRUE(inner.ok()) << output->string();
    EXPECT_TRUE(inner.value().find("healthy")->boolean());

    ASSERT_TRUE(client.sendLine(R"({"cmd":"list","id":"l"})"));
    ASSERT_TRUE(client.readJson(doc));
    EXPECT_TRUE(doc.find("ok")->boolean());
    EXPECT_EQ(doc.find("output"), nullptr);

    client.disconnect();
    server.stop();
}

TEST(Supervisor, DrainAnswersEverythingInFlight)
{
    SupervisorOptions options;
    options.dispatchers = 2;
    SupervisedServer server(options);

    SocketClient client;
    ASSERT_TRUE(client.connectTo(server.path));
    // A batch with a 300ms stall in front, all admitted before the
    // drain lands: the drain must still answer every one of them.
    ASSERT_TRUE(client.sendLine(
        R"({"cmd":"suite","suite":"micro","predict":true,)"
        R"("config":{"warps":4,"cores":2},)"
        R"("inject":"micro_stream:collect:1:300","id":"slow"})"));
    constexpr int kTrailing = 4;
    for (int i = 0; i < kTrailing; ++i)
        ASSERT_TRUE(client.sendLine(R"({"cmd":"ping","id":"t"})"));

    // Give the reader a beat to admit everything, then drain with the
    // stall still holding a dispatcher.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    requestServeDrain();

    double last_seq = 0.0;
    for (int i = 0; i < 1 + kTrailing; ++i) {
        JsonValue doc;
        ASSERT_TRUE(client.readJson(doc)) << i;
        EXPECT_GT(doc.find("seq")->number(), last_seq);
        last_seq = doc.find("seq")->number();
    }
    std::string line;
    EXPECT_FALSE(client.readLine(line, 3000)); // clean EOF after drain

    client.disconnect();
    SupervisorSummary summary = server.stop();
    EXPECT_EQ(summary.received, 1u + kTrailing);
    EXPECT_EQ(summary.evaluated + summary.shed, 1u + kTrailing);
}

} // namespace
