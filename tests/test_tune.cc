/**
 * @file
 * Tests for guided design-space exploration (harness/tune.hh): exact
 * agreement with an exhaustive search on a small grid, bit-identity
 * across thread counts, Pareto-frontier shape, explanation and
 * advisor wiring, the MRC approximation policy, and specification
 * validation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/json_value.hh"
#include "common/status.hh"
#include "harness/tune.hh"
#include "workloads/workload.hh"

namespace gpumech
{
namespace
{

const Workload &
microWorkload(const std::string &name)
{
    for (const Workload &w : microWorkloads()) {
        if (w.name == name)
            return w;
    }
    ADD_FAILURE() << "no micro workload named " << name;
    return microWorkloads().front();
}

/** Small, fast base machine (same shape the MRC sweep tests use). */
HardwareConfig
smallBase()
{
    HardwareConfig config;
    config.numCores = 2;
    config.warpsPerCore = 4;
    return config;
}

/** A 3x3x3 space over evaluation-only dimensions. */
TuneOptions
smallGrid()
{
    TuneOptions options;
    options.dims = {{"mshrs", {16, 32, 64}},
                    {"bw", {96, 192, 384}},
                    {"l2-kb", {384, 768, 1536}}};
    options.jobs = 1;
    return options;
}

/**
 * Exhaustive argmin of the same space, mirroring tune's evaluation
 * path exactly (shared reuse-distance profile at the base trace
 * shape, evaluateAt per cell, lexicographic strict-< tie-break).
 */
void
exhaustiveArgmin(EvalSession &session, const Workload &w,
                 const HardwareConfig &base, const TuneOptions &options,
                 std::vector<double> &best_coords, double &best_obj)
{
    ProfiledKernel pk = session.cache.mrcProfiler(w, base, 1.0);
    best_obj = std::numeric_limits<double>::infinity();
    for (double mshrs : options.dims[0].values) {
        for (double bw : options.dims[1].values) {
            for (double l2 : options.dims[2].values) {
                HardwareConfig config = base;
                config.numMshrs = static_cast<std::uint32_t>(mshrs);
                config.dramBandwidthGBs = bw;
                config.l2SizeBytes =
                    static_cast<std::uint32_t>(l2) * 1024;
                ASSERT_TRUE(config.validate().ok());
                GpuMechResult r = pk.profiler->evaluateAt(
                    config, SchedulingPolicy::RoundRobin,
                    ModelLevel::MT_MSHR_BAND, false);
                double obj =
                    options.objective == TuneObjective::MinCpi
                        ? r.cpi
                        : r.cpi * options.cost.cost(config, base);
                if (obj < best_obj) {
                    best_obj = obj;
                    best_coords = {mshrs, bw, l2};
                }
            }
        }
    }
}

TEST(Tune, FindsExhaustiveArgminOnSmallGrid)
{
    EvalSession session;
    const Workload &w = microWorkload("micro_stream");
    HardwareConfig base = smallBase();
    TuneOptions options = smallGrid();

    Result<TuneResult> run = runTune(session, w, base, options);
    ASSERT_TRUE(run.ok()) << run.status().toString();
    const TuneResult &result = run.value();
    EXPECT_EQ(result.spaceSize, 27u);
    EXPECT_LE(result.evaluations, 27u);

    std::vector<double> want_coords;
    double want_obj = 0.0;
    exhaustiveArgmin(session, w, base, options, want_coords, want_obj);
    EXPECT_EQ(result.best.coords, want_coords);
    EXPECT_DOUBLE_EQ(result.best.objective, want_obj);
}

TEST(Tune, FindsExhaustiveArgminUnderCpiCostObjective)
{
    EvalSession session;
    const Workload &w = microWorkload("micro_stream");
    HardwareConfig base = smallBase();
    TuneOptions options = smallGrid();
    options.objective = TuneObjective::MinCpiCost;

    Result<TuneResult> run = runTune(session, w, base, options);
    ASSERT_TRUE(run.ok()) << run.status().toString();

    std::vector<double> want_coords;
    double want_obj = 0.0;
    exhaustiveArgmin(session, w, base, options, want_coords, want_obj);
    EXPECT_EQ(run.value().best.coords, want_coords);
    EXPECT_DOUBLE_EQ(run.value().best.objective, want_obj);
}

TEST(Tune, BitIdenticalAcrossJobCounts)
{
    const Workload &w = microWorkload("micro_stream");
    HardwareConfig base = smallBase();

    TuneOptions serial = smallGrid();
    serial.jobs = 1;
    EvalSession s1;
    Result<TuneResult> r1 = runTune(s1, w, base, serial);
    ASSERT_TRUE(r1.ok()) << r1.status().toString();

    TuneOptions parallel = smallGrid();
    parallel.jobs = 8;
    EvalSession s8;
    Result<TuneResult> r8 = runTune(s8, w, base, parallel);
    ASSERT_TRUE(r8.ok()) << r8.status().toString();

    // The whole report — every point, every stack component, the
    // frontier order — must be byte-identical at any thread count.
    EXPECT_EQ(tuneResultToJson(r1.value(), "micro_stream", serial),
              tuneResultToJson(r8.value(), "micro_stream", parallel));
}

TEST(Tune, FrontierIsParetoAndEveryPointExplained)
{
    EvalSession session;
    const Workload &w = microWorkload("micro_stream");
    TuneOptions options = smallGrid();

    Result<TuneResult> run = runTune(session, w, smallBase(), options);
    ASSERT_TRUE(run.ok()) << run.status().toString();
    const TuneResult &result = run.value();

    ASSERT_FALSE(result.frontier.empty());
    for (std::size_t i = 1; i < result.frontier.size(); ++i) {
        EXPECT_GE(result.frontier[i].cost,
                  result.frontier[i - 1].cost);
        EXPECT_LT(result.frontier[i].cpi, result.frontier[i - 1].cpi);
    }
    for (const TunePoint &p : result.frontier) {
        EXPECT_TRUE(p.feasible);
        EXPECT_FALSE(p.explanation.text.empty());
    }
    EXPECT_EQ(result.baseline.explanation.text, "baseline");
    EXPECT_TRUE(result.baseline.explanation.moves.empty());
    EXPECT_FALSE(result.best.explanation.text.empty());
    EXPECT_FALSE(result.advisor.text.empty());
    EXPECT_FALSE(result.advisor.knob.empty());

    // The frontier's cheapest-at-best-CPI point is the CPI argmin, so
    // under the plain-CPI objective the best point closes the list.
    EXPECT_DOUBLE_EQ(result.frontier.back().cpi, result.best.cpi);
}

TEST(Tune, ReportParsesAsJsonWithDeclaredShape)
{
    EvalSession session;
    const Workload &w = microWorkload("micro_stream");
    TuneOptions options = smallGrid();
    Result<TuneResult> run = runTune(session, w, smallBase(), options);
    ASSERT_TRUE(run.ok()) << run.status().toString();

    Result<JsonValue> doc = parseJson(
        tuneResultToJson(run.value(), "micro_stream", options));
    ASSERT_TRUE(doc.ok()) << doc.status().toString();
    const JsonValue &v = doc.value();
    EXPECT_EQ(v.find("kernel")->string(), "micro_stream");
    EXPECT_EQ(v.find("objective")->string(), "cpi");
    ASSERT_NE(v.find("dims"), nullptr);
    EXPECT_EQ(v.find("dims")->items().size(), 3u);
    EXPECT_DOUBLE_EQ(v.find("space_size")->number(), 27.0);
    ASSERT_NE(v.find("best"), nullptr);
    ASSERT_NE(v.find("best")->find("explanation"), nullptr);
    EXPECT_FALSE(v.find("best")
                     ->find("explanation")
                     ->find("text")
                     ->string()
                     .empty());
    ASSERT_NE(v.find("frontier"), nullptr);
    for (const JsonValue &p : v.find("frontier")->items()) {
        ASSERT_NE(p.find("explanation"), nullptr);
        EXPECT_FALSE(
            p.find("explanation")->find("text")->string().empty());
    }
    ASSERT_NE(v.find("advisor"), nullptr);
    EXPECT_FALSE(v.find("advisor")->find("bottleneck")->string().empty());
}

TEST(Tune, RefusesNonLruMrcInputsUnlessAllowed)
{
    EvalSession session;
    const Workload &w = microWorkload("micro_stream");
    HardwareConfig base = smallBase();
    base.replacementPolicy = 1; // FIFO, modeled as LRU stack distances

    TuneOptions options = smallGrid();
    Result<TuneResult> refused = runTune(session, w, base, options);
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.status().code(), StatusCode::FailedValidation);
    EXPECT_NE(refused.status().message().find("--allow-approx"),
              std::string::npos)
        << refused.status().message();

    options.allowApprox = true;
    Result<TuneResult> allowed = runTune(session, w, base, options);
    ASSERT_TRUE(allowed.ok()) << allowed.status().toString();
    EXPECT_TRUE(allowed.value().mrcApproximate);
    EXPECT_NE(allowed.value().mrcApproximation.find("non-LRU"),
              std::string::npos);

    // Rerun mode sidesteps the approximation entirely.
    options.allowApprox = false;
    options.mode = SweepMode::Rerun;
    Result<TuneResult> rerun = runTune(session, w, base, options);
    ASSERT_TRUE(rerun.ok()) << rerun.status().toString();
    EXPECT_FALSE(rerun.value().mrcApproximate);
}

TEST(Tune, ConstraintsShapeTheSearch)
{
    EvalSession session;
    const Workload &w = microWorkload("micro_stream");
    TuneOptions options = smallGrid();

    Result<TuneResult> free = runTune(session, w, smallBase(), options);
    ASSERT_TRUE(free.ok()) << free.status().toString();

    // A binding cost cap must push the best point at or under it.
    options.constraints.maxCost = free.value().baseline.cost;
    Result<TuneResult> capped =
        runTune(session, w, smallBase(), options);
    ASSERT_TRUE(capped.ok()) << capped.status().toString();
    EXPECT_LE(capped.value().best.cost, options.constraints.maxCost);
    for (const TunePoint &p : capped.value().frontier)
        EXPECT_LE(p.cost, options.constraints.maxCost);

    // An unsatisfiable CPI bound leaves nothing feasible.
    options.constraints.maxCost = 0.0;
    options.constraints.maxCpi = 1e-6;
    Result<TuneResult> none = runTune(session, w, smallBase(), options);
    ASSERT_FALSE(none.ok());
    EXPECT_EQ(none.status().code(), StatusCode::NotFound);
}

TEST(Tune, RejectsBadSearchSpecifications)
{
    EvalSession session;
    const Workload &w = microWorkload("micro_stream");
    HardwareConfig base = smallBase();

    auto code = [&](const TuneOptions &options) {
        Result<TuneResult> r = runTune(session, w, base, options);
        return r.ok() ? StatusCode::Ok : r.status().code();
    };

    TuneOptions options;
    options.jobs = 1;
    options.dims = {};
    EXPECT_EQ(code(options), StatusCode::InvalidArgument);

    options.dims = {{"voltage", {}}};
    EXPECT_EQ(code(options), StatusCode::InvalidArgument);

    options.dims = {{"mshrs", {}}, {"mshrs", {}}};
    EXPECT_EQ(code(options), StatusCode::InvalidArgument);

    options.dims = {{"mshrs", {1.5}}};
    EXPECT_EQ(code(options), StatusCode::InvalidArgument);

    options.dims = {{"scheduler", {2}}};
    EXPECT_EQ(code(options), StatusCode::InvalidArgument);

    options.dims = {{"mshrs", {16, 32}}};
    options.cost.weights["voltage"] = 1.0;
    EXPECT_EQ(code(options), StatusCode::InvalidArgument);

    options.cost.weights.erase("voltage");
    options.mrcRate = 0.0;
    EXPECT_EQ(code(options), StatusCode::InvalidArgument);
}

TEST(Tune, DefaultLaddersResolveAndSchedulerSearches)
{
    EvalSession session;
    const Workload &w = microWorkload("micro_stream");
    TuneOptions options;
    options.jobs = 1;
    options.restarts = 1;
    options.dims = {{"mshrs", {16, 32}}, {"scheduler", {}}};

    Result<TuneResult> run = runTune(session, w, smallBase(), options);
    ASSERT_TRUE(run.ok()) << run.status().toString();
    const TuneResult &result = run.value();
    ASSERT_EQ(result.dims.size(), 2u);
    EXPECT_EQ(result.dims[1].values, (std::vector<double>{0, 1}));
    EXPECT_EQ(result.spaceSize, 4u);
}

TEST(Tune, CostModelIsWeightedRatioSumAndSchedulerIsFree)
{
    TuneCostModel cost;
    EXPECT_EQ(cost.weights.count("scheduler"), 0u);

    HardwareConfig base = smallBase();
    double base_cost = cost.cost(base, base);
    double weight_sum = 0.0;
    for (const auto &entry : cost.weights)
        weight_sum += entry.second;
    // Baseline costs exactly the weight sum (every ratio is 1).
    EXPECT_DOUBLE_EQ(base_cost, weight_sum);

    // Doubling one knob adds exactly its weight.
    HardwareConfig doubled = base;
    doubled.numMshrs *= 2;
    EXPECT_DOUBLE_EQ(cost.cost(doubled, base),
                     base_cost + cost.weights.at("mshrs"));

    // A declared override rescales that dimension alone.
    TuneCostModel heavy;
    heavy.weights["mshrs"] = 10.0;
    EXPECT_DOUBLE_EQ(heavy.cost(doubled, base),
                     base_cost - cost.weights.at("mshrs") + 20.0);
}

} // namespace
} // namespace gpumech
