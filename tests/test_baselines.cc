/**
 * @file
 * Tests for the baseline models: Naive_Interval (Eq. 1) and the
 * Chen & Aamodt Markov-chain model (Section VIII-A).
 */

#include <gtest/gtest.h>

#include "baselines/markov_chain.hh"
#include "baselines/naive_interval.hh"

namespace gpumech
{
namespace
{

IntervalProfile
profileWith(std::uint64_t insts, double stalls)
{
    IntervalProfile p;
    p.intervals.push_back(
        Interval{insts, stalls, StallCause::Memory, 0, 0, 0, 0});
    return p;
}

TEST(Naive, Eq1MultipliesSingleWarpIpc)
{
    HardwareConfig config = HardwareConfig::baseline();
    IntervalProfile p = profileWith(1, 10.0); // single-warp IPC 1/11
    BaselinePrediction r = naiveInterval(p, 3, config);
    EXPECT_NEAR(r.ipc, 3.0 / 11.0, 1e-12); // the paper's example
    EXPECT_NEAR(r.cpi, 11.0 / 3.0, 1e-12);
}

TEST(Naive, CappedAtIssueRate)
{
    HardwareConfig config = HardwareConfig::baseline();
    IntervalProfile p = profileWith(1, 10.0);
    BaselinePrediction r = naiveInterval(p, 100, config);
    EXPECT_DOUBLE_EQ(r.ipc, config.issueRate);
}

TEST(Naive, SingleWarpIsExactSingleWarpPerf)
{
    HardwareConfig config = HardwareConfig::baseline();
    IntervalProfile p = profileWith(4, 36.0); // IPC 0.1
    BaselinePrediction r = naiveInterval(p, 1, config);
    EXPECT_NEAR(r.ipc, 0.1, 1e-12);
}

TEST(Markov, ParameterDerivation)
{
    IntervalProfile p;
    p.intervals.push_back(
        Interval{4, 20.0, StallCause::Memory, 0, 0, 0, 0});
    p.intervals.push_back(
        Interval{6, 40.0, StallCause::Compute, 0, 0, 0, 0});
    MarkovParams params = markovParams(p);
    // 2 stalling intervals over 10 instructions.
    EXPECT_DOUBLE_EQ(params.p, 0.2);
    EXPECT_DOUBLE_EQ(params.m, 30.0);
    EXPECT_NEAR(params.piActive, 1.0 / (1.0 + 0.2 * 30.0), 1e-12);
}

TEST(Markov, StallFreeIntervalsDoNotCount)
{
    IntervalProfile p;
    p.intervals.push_back(
        Interval{10, 0.0, StallCause::None, 0, 0, 0, 0});
    MarkovParams params = markovParams(p);
    EXPECT_DOUBLE_EQ(params.p, 0.0);
    EXPECT_DOUBLE_EQ(params.piActive, 1.0);
}

TEST(Markov, ManyWarpsSaturateTheCore)
{
    HardwareConfig config = HardwareConfig::baseline();
    IntervalProfile p = profileWith(1, 10.0);
    BaselinePrediction r = markovChain(p, 1024, config);
    EXPECT_NEAR(r.ipc, config.issueRate, 1e-6);
}

TEST(Markov, SingleWarpMatchesSteadyState)
{
    HardwareConfig config = HardwareConfig::baseline();
    IntervalProfile p = profileWith(1, 10.0);
    // One warp: utilization = pi_active = 1/(1+p*M) = 1/11.
    BaselinePrediction r = markovChain(p, 1, config);
    EXPECT_NEAR(r.ipc, 1.0 / 11.0, 1e-12);
}

TEST(Markov, MonotoneInWarps)
{
    HardwareConfig config = HardwareConfig::baseline();
    IntervalProfile p = profileWith(2, 30.0);
    double prev = 0.0;
    for (std::uint32_t warps : {1u, 2u, 4u, 8u, 16u, 32u}) {
        BaselinePrediction r = markovChain(p, warps, config);
        EXPECT_GE(r.ipc, prev);
        prev = r.ipc;
    }
}

TEST(Markov, MoreOptimisticThanNothingButBounded)
{
    HardwareConfig config = HardwareConfig::baseline();
    IntervalProfile p = profileWith(4, 36.0);
    for (std::uint32_t warps : {2u, 8u, 32u}) {
        BaselinePrediction r = markovChain(p, warps, config);
        EXPECT_GT(r.ipc, 0.0);
        EXPECT_LE(r.ipc, config.issueRate);
    }
}

TEST(Markov, IgnoresContentionByDesign)
{
    // Two profiles identical except for request annotations must give
    // the same prediction: the Markov model is blind to divergence —
    // the paper's stated limitation.
    HardwareConfig config = HardwareConfig::baseline();
    IntervalProfile a = profileWith(4, 36.0);
    IntervalProfile b = profileWith(4, 36.0);
    b.intervals[0].mshrReqs = 32.0;
    b.intervals[0].dramReqs = 64.0;
    EXPECT_DOUBLE_EQ(markovChain(a, 16, config).ipc,
                     markovChain(b, 16, config).ipc);
}

} // namespace
} // namespace gpumech
