/**
 * @file
 * Tests for the experiment harness: model enumeration, per-kernel
 * evaluation structure, error aggregation and the sweep helper.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/sweep.hh"

namespace gpumech
{
namespace
{

HardwareConfig
smallConfig()
{
    HardwareConfig c = HardwareConfig::baseline();
    c.numCores = 2;
    c.warpsPerCore = 4;
    return c;
}

TEST(Harness, TableIIModelNames)
{
    EXPECT_EQ(toString(ModelKind::NaiveInterval), "Naive_Interval");
    EXPECT_EQ(toString(ModelKind::MarkovChain), "Markov_Chain");
    EXPECT_EQ(toString(ModelKind::MT), "MT");
    EXPECT_EQ(toString(ModelKind::MT_MSHR), "MT_MSHR");
    EXPECT_EQ(toString(ModelKind::MT_MSHR_BAND), "MT_MSHR_BAND");
}

TEST(Harness, AllModelsInTableIIOrder)
{
    const auto &models = allModels();
    ASSERT_EQ(models.size(), 5u);
    EXPECT_EQ(models.front(), ModelKind::NaiveInterval);
    EXPECT_EQ(models.back(), ModelKind::MT_MSHR_BAND);
}

TEST(Harness, EvaluateKernelFillsEveryModel)
{
    HardwareConfig config = smallConfig();
    KernelEvaluation eval =
        evaluateKernel(workloadByName("micro_stream"), config,
                       SchedulingPolicy::RoundRobin);
    EXPECT_EQ(eval.kernel, "micro_stream");
    EXPECT_GT(eval.oracleCpi, 0.0);
    EXPECT_GT(eval.oracleIpc, 0.0);
    for (ModelKind kind : allModels()) {
        EXPECT_TRUE(eval.predictedIpc.count(kind));
        EXPECT_GE(eval.error(kind), 0.0);
    }
}

TEST(Harness, SubsetOfModelsRunsOnlyThose)
{
    HardwareConfig config = smallConfig();
    KernelEvaluation eval = evaluateKernel(
        workloadByName("micro_stream"), config,
        SchedulingPolicy::RoundRobin, {ModelKind::MT_MSHR_BAND});
    EXPECT_EQ(eval.predictedIpc.size(), 1u);
}

TEST(Harness, AverageErrorAggregates)
{
    HardwareConfig config = smallConfig();
    std::vector<Workload> kernels = {
        workloadByName("micro_stream"),
        workloadByName("micro_compute_chain")};
    auto evals = evaluateSuite(kernels, config,
                               SchedulingPolicy::RoundRobin);
    ASSERT_EQ(evals.size(), 2u);
    double avg = averageError(evals, ModelKind::MT_MSHR_BAND);
    double manual = (evals[0].error(ModelKind::MT_MSHR_BAND) +
                     evals[1].error(ModelKind::MT_MSHR_BAND)) /
                    2.0;
    EXPECT_DOUBLE_EQ(avg, manual);
}

TEST(Harness, FractionWithinThreshold)
{
    HardwareConfig config = smallConfig();
    std::vector<Workload> kernels = {
        workloadByName("micro_compute_chain")};
    auto evals = evaluateSuite(kernels, config,
                               SchedulingPolicy::RoundRobin);
    // Compute-chain is modeled almost exactly: well within 50%.
    EXPECT_DOUBLE_EQ(
        fractionWithin(evals, ModelKind::MT_MSHR_BAND, 0.5), 1.0);
}

TEST(Harness, GpuMechBeatsNaiveOnDivergentKernel)
{
    // The headline qualitative claim, as a regression test.
    HardwareConfig config = smallConfig();
    config.warpsPerCore = 8;
    KernelEvaluation eval =
        evaluateKernel(workloadByName("micro_divergent32"), config,
                       SchedulingPolicy::RoundRobin);
    EXPECT_LT(eval.error(ModelKind::MT_MSHR_BAND),
              eval.error(ModelKind::NaiveInterval));
    EXPECT_LT(eval.error(ModelKind::MT_MSHR_BAND),
              eval.error(ModelKind::MarkovChain));
}

TEST(Harness, StackEvaluationConsistent)
{
    HardwareConfig config = smallConfig();
    StackEvaluation eval =
        evaluateStack(workloadByName("micro_divergent8"), config,
                      SchedulingPolicy::RoundRobin);
    EXPECT_NEAR(eval.model.stack.total(), eval.model.cpi, 1e-6);
    EXPECT_GT(eval.oracle.totalCycles, 0u);
}

TEST(Harness, SweepShapesAndLabels)
{
    std::vector<Workload> kernels = {workloadByName("micro_stream")};
    std::vector<SweepPoint> points;
    for (std::uint32_t warps : {4u, 8u}) {
        HardwareConfig config = smallConfig();
        config.warpsPerCore = warps;
        points.push_back({std::to_string(warps) + "w", config});
    }
    SweepResult result =
        runSweep(kernels, points, SchedulingPolicy::RoundRobin);
    ASSERT_EQ(result.labels.size(), 2u);
    EXPECT_EQ(result.labels[0], "4w");
    for (ModelKind kind : allModels())
        EXPECT_EQ(result.averages.at(kind).size(), 2u);

    std::ostringstream os;
    printSweep(os, result);
    EXPECT_NE(os.str().find("MT_MSHR_BAND"), std::string::npos);
    EXPECT_NE(os.str().find("4w"), std::string::npos);

    // CSV variant: comma separated, raw fractions (no % sign).
    std::ostringstream csv;
    printSweepCsv(csv, result);
    EXPECT_NE(csv.str().find("model,4w,8w"), std::string::npos);
    EXPECT_EQ(csv.str().find('%'), std::string::npos);
}

} // namespace
} // namespace gpumech
