/**
 * @file
 * Tests for the workload registry and generators: suite composition,
 * structural validity of every generated trace, behaviour flags, and
 * determinism.
 */

#include <gtest/gtest.h>

#include <set>

#include "workloads/archetypes.hh"
#include "workloads/patterns.hh"
#include "workloads/workload.hh"

namespace gpumech
{
namespace
{

HardwareConfig
smallConfig()
{
    HardwareConfig c = HardwareConfig::baseline();
    c.numCores = 2;
    c.warpsPerCore = 4;
    return c;
}

TEST(Workloads, FortyEvaluationKernels)
{
    EXPECT_EQ(evaluationWorkloads().size(), 40u);
}

TEST(Workloads, SuiteSizes)
{
    EXPECT_EQ(workloadsBySuite("rodinia").size(), 16u);
    EXPECT_EQ(workloadsBySuite("parboil").size(), 12u);
    EXPECT_EQ(workloadsBySuite("sdk").size(), 12u);
    EXPECT_GE(workloadsBySuite("micro").size(), 8u);
}

TEST(Workloads, NamesUnique)
{
    std::set<std::string> names;
    for (const auto &w : allWorkloads())
        EXPECT_TRUE(names.insert(w.name).second) << w.name;
}

TEST(Workloads, LookupByName)
{
    const Workload &w = workloadByName("kmeans_invert_mapping");
    EXPECT_EQ(w.suite, "rodinia");
    EXPECT_TRUE(w.memoryDivergent);
}

TEST(Workloads, StressSuitePresentButNotInEvaluation)
{
    EXPECT_EQ(stressWorkloads().size(), 3u);
    for (const auto &w : stressWorkloads()) {
        EXPECT_EQ(w.suite, "stress");
        for (const auto &e : evaluationWorkloads())
            EXPECT_NE(e.name, w.name);
    }
}

TEST(Workloads, StressKernelsGenerateValidPhasedTraces)
{
    HardwareConfig config = smallConfig();
    for (const auto &w : stressWorkloads()) {
        KernelTrace kernel = w.generate(config);
        EXPECT_TRUE(kernel.validate()) << w.name;
        // Phased kernels must actually have phases: both memory and
        // a long compute-only stretch.
        WarpView warp = kernel.warp(0);
        std::size_t longest_compute_run = 0, run = 0;
        std::size_t mem_insts = 0;
        for (std::size_t i = 0; i < warp.numInsts(); ++i) {
            if (isGlobalMemory(warp.op(i))) {
                ++mem_insts;
                longest_compute_run =
                    std::max(longest_compute_run, run);
                run = 0;
            } else {
                ++run;
            }
        }
        longest_compute_run = std::max(longest_compute_run, run);
        EXPECT_GT(mem_insts, 0u) << w.name;
        // The two kernels with a dedicated compute phase must show a
        // long run of non-memory instructions.
        if (w.name != "stress_write_burst_tail") {
            EXPECT_GT(longest_compute_run, 20u) << w.name;
        }
    }
}

TEST(Workloads, ControlDivergentSubsetNonEmpty)
{
    auto subset = controlDivergentWorkloads();
    EXPECT_GE(subset.size(), 5u);
    for (const auto &w : subset)
        EXPECT_TRUE(w.controlDivergent) << w.name;
}

TEST(Workloads, EveryKernelGeneratesValidTrace)
{
    HardwareConfig config = smallConfig();
    for (const auto &w : allWorkloads()) {
        KernelTrace kernel = w.generate(config);
        EXPECT_EQ(kernel.name(), w.name);
        EXPECT_TRUE(kernel.validate()) << w.name;
        EXPECT_EQ(kernel.numWarps(), totalWarps(config)) << w.name;
        EXPECT_GT(kernel.totalInsts(), 0u) << w.name;
    }
}

TEST(Workloads, WarpsBalancedAcrossCores)
{
    HardwareConfig config = smallConfig();
    for (const auto &w : evaluationWorkloads()) {
        KernelTrace kernel = w.generate(config);
        for (std::uint32_t c = 0; c < config.numCores; ++c) {
            EXPECT_EQ(kernel.warpsOnCore(c, config).size(),
                      config.warpsPerCore)
                << w.name << " core " << c;
        }
    }
}

TEST(Workloads, GenerationDeterministic)
{
    HardwareConfig config = smallConfig();
    for (const char *name : {"srad_kernel1", "bfs_kernel1",
                             "histo_main", "sgemm_tiled"}) {
        const Workload &w = workloadByName(name);
        KernelTrace a = w.generate(config);
        KernelTrace b = w.generate(config);
        ASSERT_EQ(a.numWarps(), b.numWarps()) << name;
        for (std::uint32_t i = 0; i < a.numWarps(); ++i) {
            WarpView wa = a.warp(i);
            WarpView wb = b.warp(i);
            ASSERT_EQ(wa.numInsts(), wb.numInsts()) << name;
            for (std::size_t k = 0; k < wa.numInsts(); ++k) {
                EXPECT_EQ(wa.pc(k), wb.pc(k));
                EXPECT_TRUE(wa.lines(k) == wb.lines(k));
            }
        }
    }
}

TEST(Workloads, MemoryDivergenceFlagsAccurate)
{
    HardwareConfig config = smallConfig();
    for (const auto &w : evaluationWorkloads()) {
        KernelTrace kernel = w.generate(config);
        std::uint32_t max_degree = 0;
        for (WarpView warp : kernel.warps()) {
            for (std::size_t i = 0; i < warp.numInsts(); ++i) {
                if (isGlobalMemory(warp.op(i))) {
                    max_degree = std::max(max_degree,
                                          warp.numRequests(i));
                }
            }
        }
        if (w.memoryDivergent) {
            EXPECT_GT(max_degree, 2u) << w.name;
        } else {
            EXPECT_LE(max_degree, 4u) << w.name;
        }
    }
}

TEST(Workloads, ControlDivergenceProducesVaryingLengths)
{
    HardwareConfig config = smallConfig();
    for (const char *name :
         {"bfs_kernel1", "micro_control_divergent", "lud_diagonal"}) {
        KernelTrace kernel = workloadByName(name).generate(config);
        std::set<std::size_t> lengths;
        for (WarpView warp : kernel.warps())
            lengths.insert(warp.numInsts());
        EXPECT_GT(lengths.size(), 2u) << name;
    }
}

TEST(Workloads, UniformKernelsHaveUniformLengths)
{
    HardwareConfig config = smallConfig();
    KernelTrace kernel =
        workloadByName("cfd_step_factor").generate(config);
    std::set<std::size_t> lengths;
    for (WarpView warp : kernel.warps())
        lengths.insert(warp.numInsts());
    EXPECT_EQ(lengths.size(), 1u);
}

TEST(Workloads, WarpCountScalesWithConfig)
{
    const Workload &w = workloadByName("vectorAdd");
    for (std::uint32_t warps : {8u, 16u, 32u}) {
        HardwareConfig config = HardwareConfig::baseline();
        config.numCores = 2;
        config.warpsPerCore = warps;
        KernelTrace kernel = w.generate(config);
        EXPECT_EQ(kernel.numWarps(), 2 * warps);
    }
}

TEST(Patterns, CoalescedIsOneLinePerWarp)
{
    auto addrs = coalescedPattern(0x1000, 32, 4);
    EXPECT_EQ(coalescedCount(addrs, 128), 1u);
}

TEST(Patterns, StridedFullLineStride)
{
    auto addrs = stridedPattern(0x1000, 32, 128);
    EXPECT_EQ(coalescedCount(addrs, 128), 32u);
}

TEST(Patterns, DivergentExactDegree)
{
    for (std::uint32_t degree : {1u, 2u, 7u, 16u, 32u}) {
        auto addrs = divergentPattern(0x1000, 32, degree, 128);
        EXPECT_EQ(coalescedCount(addrs, 128), degree);
        EXPECT_EQ(addrs.size(), 32u);
    }
}

TEST(Patterns, RandomDivergentAtMostDegree)
{
    Rng rng(11);
    for (int i = 0; i < 50; ++i) {
        auto addrs =
            randomDivergentPattern(rng, 0x10000, 1 << 20, 32, 8, 128);
        EXPECT_LE(coalescedCount(addrs, 128), 8u);
        EXPECT_GE(coalescedCount(addrs, 128), 1u);
        for (Addr a : addrs) {
            EXPECT_GE(a, 0x10000u);
            EXPECT_LT(a, 0x10000u + (1 << 20));
        }
    }
}

TEST(Archetypes, PointerChaseIsFullySerial)
{
    HardwareConfig config = smallConfig();
    PointerChaseParams params;
    params.chainLength = 10;
    params.computeBetween = 0;
    KernelTrace kernel = pointerChaseKernel("chase", params, config);
    WarpView warp = kernel.warp(0);
    ASSERT_EQ(warp.numInsts(), 10u);
    for (std::size_t i = 1; i < warp.numInsts(); ++i)
        EXPECT_EQ(warp.deps(i)[0], static_cast<std::int32_t>(i - 1));
}

TEST(Archetypes, TransposeNaiveStoresFullyDivergent)
{
    HardwareConfig config = smallConfig();
    TransposeParams params;
    params.tilesPerWarp = 3;
    params.viaShared = false;
    KernelTrace kernel = transposeKernel("tn", params, config);
    WarpView warp = kernel.warp(0);
    for (std::size_t i = 0; i < warp.numInsts(); ++i) {
        if (warp.op(i) == Opcode::GlobalStore) {
            EXPECT_EQ(warp.numRequests(i), 32u);
        }
    }
}

TEST(Archetypes, ReductionShrinksActiveMask)
{
    HardwareConfig config = smallConfig();
    ReductionParams params;
    params.loadsPerWarp = 4;
    params.levels = 3;
    KernelTrace kernel = reductionKernel("red", params, config);
    std::set<std::uint32_t> masks;
    WarpView warp = kernel.warp(1);
    for (std::size_t i = 0; i < warp.numInsts(); ++i)
        masks.insert(warp.activeThreads(i));
    // Full warp plus the halved levels 16, 8, 4.
    EXPECT_TRUE(masks.count(32));
    EXPECT_TRUE(masks.count(16));
    EXPECT_TRUE(masks.count(4));
}

} // namespace
} // namespace gpumech
