/**
 * @file
 * Tests for the issue-width design-space axis (extension): oracle
 * multi-issue behaviour and model/oracle agreement at widths > 1.
 */

#include <gtest/gtest.h>

#include "core/gpumech.hh"
#include "timing/gpu_timing.hh"
#include "trace/trace_builder.hh"
#include "workloads/workload.hh"

namespace gpumech
{
namespace
{

TEST(IssueWidth, ConfigHelperKeepsRateCoherent)
{
    HardwareConfig c = HardwareConfig::baseline().withIssueWidth(2);
    EXPECT_EQ(c.issueWidth, 2u);
    EXPECT_DOUBLE_EQ(c.issueRate, 2.0);
    // Everything else untouched.
    EXPECT_EQ(c.numCores, 16u);
    EXPECT_EQ(c.numMshrs, 32u);
}

TEST(IssueWidth, DualIssueHalvesIndependentComputeTime)
{
    HardwareConfig config =
        HardwareConfig::baseline().withIssueWidth(2);
    config.numCores = 1;
    config.warpsPerCore = 2;
    KernelTrace kernel("t");
    auto pc = kernel.addStatic(Opcode::IntAlu);
    for (std::uint32_t w = 0; w < 2; ++w) {
        TraceBuilder b(kernel, w, 0, config);
        for (int i = 0; i < 8; ++i)
            b.compute(pc);
        b.finish();
    }
    GpuTiming sim(kernel, config, SchedulingPolicy::RoundRobin);
    TimingStats s = sim.run();
    // 16 instructions over 8 dual-issue cycles; last issues at 7,
    // completes at 27.
    EXPECT_EQ(s.totalCycles, 27u);
}

TEST(IssueWidth, SingleWarpInOrderStillSerializesDependences)
{
    // Width 2 cannot dual-issue a dependent pair.
    HardwareConfig config =
        HardwareConfig::baseline().withIssueWidth(2);
    config.numCores = 1;
    config.warpsPerCore = 1;
    KernelTrace kernel("t");
    auto pc = kernel.addStatic(Opcode::IntAlu);
    TraceBuilder b(kernel, 0, 0, config);
    Reg r = b.compute(pc);
    b.compute(pc, {r});
    b.finish();
    GpuTiming sim(kernel, config, SchedulingPolicy::RoundRobin);
    // Same as width 1: dependent inst waits the full latency.
    EXPECT_EQ(sim.run().totalCycles, 41u);
}

TEST(IssueWidth, OneInstructionPerWarpPerCycle)
{
    // The wider issue stage picks different warps; a single warp
    // still supplies at most one in-order instruction per cycle, so a
    // lone warp sees no benefit from width 2.
    HardwareConfig config =
        HardwareConfig::baseline().withIssueWidth(2);
    config.numCores = 1;
    config.warpsPerCore = 1;
    KernelTrace kernel("t");
    auto pc = kernel.addStatic(Opcode::IntAlu);
    TraceBuilder b(kernel, 0, 0, config);
    for (int i = 0; i < 8; ++i)
        b.compute(pc);
    b.finish();
    GpuTiming sim(kernel, config, SchedulingPolicy::RoundRobin);
    EXPECT_EQ(sim.run().totalCycles, 27u); // same as width 1
}

TEST(IssueWidth, ChainBoundKernelSaturatesBelowWidthBound)
{
    // micro_compute_chain's warps are latency chains (each warp
    // supplies one instruction per ~21 cycles), so 32 warps feed a
    // dual-issue core ~1.5 inst/cycle: CPI lands between 1/width and
    // 1, and the model must track it.
    HardwareConfig config =
        HardwareConfig::baseline().withIssueWidth(2);
    config.numCores = 2;
    config.warpsPerCore = 32;
    KernelTrace kernel =
        workloadByName("micro_compute_chain").generate(config);
    GpuTiming sim(kernel, config, SchedulingPolicy::RoundRobin);
    TimingStats s = sim.run();
    EXPECT_GT(s.cpi(), 0.5);
    EXPECT_LT(s.cpi(), 1.0);

    GpuMechResult model = runGpuMech(kernel, config, GpuMechOptions{});
    EXPECT_NEAR(model.cpi, s.cpi(), 0.10 * s.cpi());
}

TEST(IssueWidth, ModelTracksOracleAtWidthTwo)
{
    HardwareConfig config =
        HardwareConfig::baseline().withIssueWidth(2);
    config.numCores = 2;
    config.warpsPerCore = 8;
    for (const char *name : {"micro_stream", "micro_divergent8"}) {
        KernelTrace kernel = workloadByName(name).generate(config);
        GpuTiming sim(kernel, config, SchedulingPolicy::RoundRobin);
        double oracle_cpi = sim.run().cpi();
        GpuMechResult model =
            runGpuMech(kernel, config, GpuMechOptions{});
        EXPECT_NEAR(model.cpi, oracle_cpi, 0.3 * oracle_cpi) << name;
    }
}

TEST(IssueWidth, WiderCoreNeverSlower)
{
    for (const char *name :
         {"micro_compute_chain", "micro_stream", "vectorAdd"}) {
        double prev = 1e18;
        for (std::uint32_t width : {1u, 2u, 4u}) {
            HardwareConfig config =
                HardwareConfig::baseline().withIssueWidth(width);
            config.numCores = 2;
            config.warpsPerCore = 8;
            KernelTrace kernel =
                workloadByName(name).generate(config);
            GpuTiming sim(kernel, config,
                          SchedulingPolicy::RoundRobin);
            double cycles =
                static_cast<double>(sim.run().totalCycles);
            EXPECT_LE(cycles, prev * 1.01) << name << " w" << width;
            prev = cycles;
        }
    }
}

} // namespace
} // namespace gpumech
