/**
 * @file
 * Cross-validation between the analytical side (collector + interval
 * algorithm + models) and the timing simulator. For a single warp on
 * a single core the interval algorithm is an exact analytic twin of
 * the in-order pipeline, so the two must agree tightly; these tests
 * pin that relationship and the shared cache statistics.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "core/gpumech.hh"
#include "core/interval_builder.hh"
#include "timing/gpu_timing.hh"
#include "trace/trace_builder.hh"
#include "workloads/workload.hh"

namespace gpumech
{
namespace
{

HardwareConfig
singleWarpConfig()
{
    HardwareConfig c = HardwareConfig::baseline();
    c.numCores = 1;
    c.warpsPerCore = 1;
    return c;
}

TEST(CrossValidation, SingleWarpComputeCyclesExact)
{
    // timing total = profile cycles + latency(last) - 1 exactly for
    // compute-only traces (the profile counts issue slots, the
    // simulator counts to the last completion).
    HardwareConfig config = singleWarpConfig();
    KernelTrace kernel("t");
    auto pc_i = kernel.addStatic(Opcode::IntAlu);
    auto pc_f = kernel.addStatic(Opcode::FpAlu);
    TraceBuilder b(kernel, 0, 0, config);
    Reg r = b.compute(pc_i);
    r = b.compute(pc_f, {r});
    b.compute(pc_i);
    r = b.compute(pc_i, {r});
    b.compute(pc_f, {r});
    b.finish();

    CollectorResult inputs = collectInputs(kernel, config);
    IntervalProfile profile =
        buildIntervalProfile(kernel.warp(0), inputs, config);
    GpuTiming sim(kernel, config, SchedulingPolicy::RoundRobin);
    TimingStats stats = sim.run();

    double last_latency = config.latency.fpAlu;
    EXPECT_DOUBLE_EQ(profile.totalCycles(1.0) + last_latency - 1.0,
                     static_cast<double>(stats.totalCycles));
}

class SingleWarpAgreement
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(SingleWarpAgreement, ModelTracksOracleWithinFivePercent)
{
    // With one warp there is no multithreading or contention to
    // model: the entire prediction is the interval profile, whose
    // only systematic deviations from the simulator are the +-1 cycle
    // DRAM service rounding per load and the trailing latency.
    HardwareConfig config = singleWarpConfig();
    KernelTrace kernel = workloadByName(GetParam()).generate(config);
    ASSERT_EQ(kernel.numWarps(), 1u);

    GpuMechResult model = runGpuMech(kernel, config, GpuMechOptions{});
    GpuTiming sim(kernel, config, SchedulingPolicy::RoundRobin);
    TimingStats stats = sim.run();

    double err = std::abs(model.cpi - stats.cpi()) / stats.cpi();
    EXPECT_LT(err, 0.05) << GetParam() << ": model " << model.cpi
                         << " vs oracle " << stats.cpi();
}

INSTANTIATE_TEST_SUITE_P(
    MicroKernels, SingleWarpAgreement,
    ::testing::Values("micro_compute_chain", "micro_stream",
                      "micro_divergent8", "micro_divergent32",
                      "micro_pointer_chase", "micro_l1_resident",
                      "micro_sfu_heavy"));

TEST(CrossValidation, CollectorAndTimingAgreeOnL1Counts)
{
    // Distinct-line streaming loads: no MSHR merging, so the
    // functional collector and the timing simulator perform the same
    // L1 lookups and must count identical hits.
    HardwareConfig config = singleWarpConfig();
    KernelTrace kernel =
        workloadByName("micro_stream").generate(config);

    CollectorResult inputs = collectInputs(kernel, config);
    GpuTiming sim(kernel, config, SchedulingPolicy::RoundRobin);
    TimingStats stats = sim.run();

    std::uint64_t collector_accesses = 0;
    std::uint64_t collector_l1_misses = 0;
    for (const auto &pc : inputs.pcs) {
        if (pc.op != Opcode::GlobalLoad)
            continue;
        collector_accesses += pc.reqCount;
        collector_l1_misses += pc.reqL1Miss;
    }
    EXPECT_EQ(stats.l1Accesses, collector_accesses);
    EXPECT_EQ(stats.l1Accesses - stats.l1Hits, collector_l1_misses);
}

TEST(CrossValidation, PointerChaseIsLatencyBoundBothWays)
{
    // Serial loads: both sides must predict roughly
    // chain_length * miss_latency cycles.
    HardwareConfig config = singleWarpConfig();
    KernelTrace kernel =
        workloadByName("micro_pointer_chase").generate(config);
    GpuTiming sim(kernel, config, SchedulingPolicy::RoundRobin);
    TimingStats stats = sim.run();

    // 120 hops, mostly L2 misses at ~421 cycles per hop.
    EXPECT_GT(stats.totalCycles, 120u * 350u);
    GpuMechResult model = runGpuMech(kernel, config, GpuMechOptions{});
    EXPECT_NEAR(model.cpi, stats.cpi(), 0.05 * stats.cpi());
}

TEST(CrossValidation, ModelAndOracleRankKernelsConsistently)
{
    // The model must preserve the oracle's performance ordering for
    // clearly separated kernels (compute-bound vs latency-bound vs
    // bandwidth-bound).
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 2;
    config.warpsPerCore = 8;
    const char *names[] = {"micro_compute_chain", "micro_stream",
                           "micro_divergent32"};
    std::vector<double> model_cpi, oracle_cpi;
    for (const char *name : names) {
        KernelTrace kernel = workloadByName(name).generate(config);
        model_cpi.push_back(
            runGpuMech(kernel, config, GpuMechOptions{}).cpi);
        GpuTiming sim(kernel, config, SchedulingPolicy::RoundRobin);
        oracle_cpi.push_back(sim.run().cpi());
    }
    // compute_chain < stream < divergent32 on both sides.
    EXPECT_LT(oracle_cpi[0], oracle_cpi[1]);
    EXPECT_LT(oracle_cpi[1], oracle_cpi[2]);
    EXPECT_LT(model_cpi[0], model_cpi[1]);
    EXPECT_LT(model_cpi[1], model_cpi[2]);
}

TEST(CrossValidation, WarpScalingDirectionMatches)
{
    // Going from 4 to 16 warps must improve (or hold) per-core IPC in
    // both the oracle and the model for a latency-bound kernel.
    auto run_at = [](std::uint32_t warps, double &model_ipc,
                     double &oracle_ipc) {
        HardwareConfig config = HardwareConfig::baseline();
        config.numCores = 2;
        config.warpsPerCore = warps;
        KernelTrace kernel =
            workloadByName("micro_stream").generate(config);
        model_ipc = runGpuMech(kernel, config, GpuMechOptions{}).ipc;
        GpuTiming sim(kernel, config, SchedulingPolicy::RoundRobin);
        oracle_ipc = 1.0 / sim.run().cpi();
    };
    double m4, o4, m16, o16;
    run_at(4, m4, o4);
    run_at(16, m16, o16);
    EXPECT_GT(o16, o4);
    EXPECT_GT(m16, m4);
}

} // namespace
} // namespace gpumech
