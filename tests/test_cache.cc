/**
 * @file
 * Unit tests for the set-associative cache and the two-level
 * functional hierarchy.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "mem/cache.hh"
#include "mem/hierarchy.hh"

namespace gpumech
{
namespace
{

// A tiny 2-way cache with 4 sets of 64B lines (512B total).
Cache
tinyCache()
{
    return Cache(512, 64, 2, "tiny");
}

TEST(Cache, GeometryDerivation)
{
    Cache c(32 * 1024, 128, 8, "l1");
    EXPECT_EQ(c.numSets(), 32u);
    EXPECT_EQ(c.associativity(), 8u);
    EXPECT_EQ(c.lineSize(), 128u);
}

TEST(Cache, NonPowerOfTwoSetCount)
{
    // The Table I L2: 768 KB / (128 B * 8 ways) = 768 sets.
    Cache c(768 * 1024, 128, 8, "l2");
    EXPECT_EQ(c.numSets(), 768u);
    // Distinct lines apart by numSets*lineBytes map to the same set
    // and must still be distinguished by tag.
    Addr a = 0;
    Addr b = 768ull * 128;
    EXPECT_FALSE(c.access(a));
    EXPECT_FALSE(c.access(b));
    EXPECT_TRUE(c.access(a));
    EXPECT_TRUE(c.access(b));
}

TEST(Cache, ColdMissThenHit)
{
    Cache c = tinyCache();
    EXPECT_FALSE(c.access(0x0));
    EXPECT_TRUE(c.access(0x0));
    EXPECT_EQ(c.accesses(), 2u);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, DistinctSetsDoNotConflict)
{
    Cache c = tinyCache();
    c.access(0x0);   // set 0
    c.access(0x40);  // set 1
    c.access(0x80);  // set 2
    c.access(0xc0);  // set 3
    EXPECT_TRUE(c.access(0x0));
    EXPECT_TRUE(c.access(0x40));
    EXPECT_TRUE(c.access(0x80));
    EXPECT_TRUE(c.access(0xc0));
}

TEST(Cache, LruEvictionOrder)
{
    Cache c = tinyCache(); // 2 ways per set; set stride 256B
    Addr a = 0x000, b = 0x100, d = 0x200; // all set 0
    c.access(a);
    c.access(b);
    c.access(a);     // a most recent
    c.access(d);     // evicts b (LRU)
    EXPECT_TRUE(c.probe(a));
    EXPECT_FALSE(c.probe(b));
    EXPECT_TRUE(c.probe(d));
}

TEST(Cache, AccessRefreshesRecency)
{
    Cache c = tinyCache();
    Addr a = 0x000, b = 0x100, d = 0x200;
    c.access(a);
    c.access(b);
    c.access(b); // b now MRU; a is LRU
    c.access(d); // evicts a
    EXPECT_FALSE(c.probe(a));
    EXPECT_TRUE(c.probe(b));
}

TEST(Cache, ProbeDoesNotMutate)
{
    Cache c = tinyCache();
    Addr a = 0x000, b = 0x100, d = 0x200;
    c.access(a);
    c.access(b);
    // Probing a must not refresh it.
    EXPECT_TRUE(c.probe(a));
    c.access(d); // still evicts a (LRU despite probe)
    EXPECT_FALSE(c.probe(a));
    EXPECT_EQ(c.accesses(), 3u); // probes don't count as accesses
}

TEST(Cache, LookupDoesNotFill)
{
    Cache c = tinyCache();
    EXPECT_FALSE(c.lookup(0x0));
    EXPECT_FALSE(c.probe(0x0)); // still absent
    EXPECT_EQ(c.accesses(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LookupHitUpdatesRecency)
{
    Cache c = tinyCache();
    Addr a = 0x000, b = 0x100, d = 0x200;
    c.access(a);
    c.access(b);
    EXPECT_TRUE(c.lookup(a)); // refresh a
    c.access(d);              // evicts b
    EXPECT_TRUE(c.probe(a));
    EXPECT_FALSE(c.probe(b));
}

TEST(Cache, FillInsertsWithoutAccessStats)
{
    Cache c = tinyCache();
    c.fill(0x0);
    EXPECT_TRUE(c.probe(0x0));
    EXPECT_EQ(c.accesses(), 0u);
}

TEST(Cache, FillOfPresentLineRefreshes)
{
    Cache c = tinyCache();
    Addr a = 0x000, b = 0x100, d = 0x200;
    c.access(a);
    c.access(b);
    c.fill(a);   // refresh
    c.access(d); // evicts b
    EXPECT_TRUE(c.probe(a));
}

TEST(Cache, ResetClearsStateAndStats)
{
    Cache c = tinyCache();
    c.access(0x0);
    c.access(0x0);
    c.reset();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_FALSE(c.probe(0x0));
}

TEST(Cache, HitRate)
{
    Cache c = tinyCache();
    EXPECT_DOUBLE_EQ(c.hitRate(), 0.0);
    c.access(0x0);
    c.access(0x0);
    c.access(0x0);
    EXPECT_NEAR(c.hitRate(), 2.0 / 3.0, 1e-12);
}

TEST(Cache, WorkingSetLargerThanCapacityThrashes)
{
    Cache c = tinyCache(); // 8 lines capacity
    // Stream 32 distinct lines twice: second pass must still miss.
    for (int pass = 0; pass < 2; ++pass) {
        for (Addr line = 0; line < 32; ++line)
            c.access(line * 64);
    }
    EXPECT_EQ(c.hits(), 0u);
}

TEST(Cache, WorkingSetWithinCapacityAllHitsSecondPass)
{
    Cache c = tinyCache(); // 8 lines
    for (int pass = 0; pass < 2; ++pass) {
        for (Addr line = 0; line < 8; ++line)
            c.access(line * 64);
    }
    EXPECT_EQ(c.hits(), 8u);
}

class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,
                                                 std::uint32_t,
                                                 std::uint32_t>>
{
};

TEST_P(CacheGeometry, FullCapacityIsUsable)
{
    auto [size, line, assoc] = GetParam();
    Cache c(size, line, assoc, "p");
    std::uint32_t lines = size / line;
    // Fill exactly to capacity with a set-uniform stream, then verify
    // everything is resident.
    for (Addr i = 0; i < lines; ++i)
        c.access(i * line);
    for (Addr i = 0; i < lines; ++i)
        EXPECT_TRUE(c.probe(i * line)) << "line " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::make_tuple(512u, 64u, 1u),
                      std::make_tuple(1024u, 64u, 2u),
                      std::make_tuple(32u * 1024, 128u, 8u),
                      std::make_tuple(768u * 1024, 128u, 8u),
                      std::make_tuple(4096u, 128u, 4u),
                      std::make_tuple(2048u, 256u, 8u)));

TEST(Replacement, PolicyNames)
{
    EXPECT_EQ(toString(ReplacementPolicy::Lru), "LRU");
    EXPECT_EQ(toString(ReplacementPolicy::Fifo), "FIFO");
    EXPECT_EQ(toString(ReplacementPolicy::PseudoRandom), "Random");
    EXPECT_EQ(toString(ReplacementPolicy::Arc), "ARC");
}

TEST(Replacement, FifoIgnoresRecency)
{
    Cache c(512, 64, 2, "fifo", ReplacementPolicy::Fifo);
    Addr a = 0x000, b = 0x100, d = 0x200; // same set
    c.access(a);
    c.access(b);
    c.access(a); // refresh a: irrelevant under FIFO
    c.access(d); // evicts a (oldest fill)
    EXPECT_FALSE(c.probe(a));
    EXPECT_TRUE(c.probe(b));
    EXPECT_TRUE(c.probe(d));
}

TEST(Replacement, FifoEvictsInFillOrder)
{
    Cache c(512, 64, 2, "fifo", ReplacementPolicy::Fifo);
    Addr a = 0x000, b = 0x100, d = 0x200, e = 0x300;
    c.access(a);
    c.access(b);
    c.access(d); // evicts a
    c.access(e); // evicts b
    EXPECT_FALSE(c.probe(a));
    EXPECT_FALSE(c.probe(b));
    EXPECT_TRUE(c.probe(d));
    EXPECT_TRUE(c.probe(e));
}

TEST(Replacement, RandomIsDeterministicAcrossRuns)
{
    auto trace = [](Cache &c) {
        std::vector<bool> hits;
        for (int i = 0; i < 200; ++i)
            hits.push_back(c.access((i % 24) * 0x100ull));
        return hits;
    };
    Cache c1(512, 64, 2, "r1", ReplacementPolicy::PseudoRandom);
    Cache c2(512, 64, 2, "r2", ReplacementPolicy::PseudoRandom);
    EXPECT_EQ(trace(c1), trace(c2));
}

TEST(Replacement, AllPoliciesFillInvalidWaysFirst)
{
    for (auto policy :
         {ReplacementPolicy::Lru, ReplacementPolicy::Fifo,
          ReplacementPolicy::PseudoRandom, ReplacementPolicy::Arc}) {
        Cache c(512, 64, 2, "p", policy);
        c.access(0x000);
        c.access(0x100); // second way of set 0, no eviction
        EXPECT_TRUE(c.probe(0x000)) << toString(policy);
        EXPECT_TRUE(c.probe(0x100)) << toString(policy);
    }
}

TEST(Replacement, LruBeatsFifoOnReuseLoop)
{
    // A looping working set slightly over capacity: LRU and FIFO both
    // thrash, but on a reuse-friendly pattern (re-touching a hot line
    // between streaming lines) LRU must keep the hot line alive.
    auto run = [](ReplacementPolicy policy) {
        Cache c(512, 64, 2, "p", policy); // 8 lines
        Addr hot = 0x0;
        for (int i = 1; i <= 64; ++i) {
            c.access(hot);
            c.access((i % 16) * 0x40ull + 0x1000);
        }
        return c.hitRate();
    };
    EXPECT_GT(run(ReplacementPolicy::Lru),
              run(ReplacementPolicy::Fifo));
}

TEST(Replacement, ConfigIndexTranslation)
{
    HardwareConfig config = HardwareConfig::baseline();
    EXPECT_EQ(replacementFromConfig(config), ReplacementPolicy::Lru);
    config.replacementPolicy = 1;
    EXPECT_EQ(replacementFromConfig(config), ReplacementPolicy::Fifo);
    config.replacementPolicy = 2;
    EXPECT_EQ(replacementFromConfig(config),
              ReplacementPolicy::PseudoRandom);
    config.replacementPolicy = 3;
    EXPECT_EQ(replacementFromConfig(config), ReplacementPolicy::Arc);
}

TEST(Replacement, ArcColdMissThenHit)
{
    Cache c(512, 64, 2, "arc", ReplacementPolicy::Arc);
    EXPECT_FALSE(c.access(0x0));
    EXPECT_TRUE(c.access(0x0));
    EXPECT_EQ(c.accesses(), 2u);
    EXPECT_EQ(c.hits(), 1u);
}

TEST(Replacement, ArcRespectsSetCapacity)
{
    Cache c(512, 64, 2, "arc", ReplacementPolicy::Arc);
    Addr a = 0x000, b = 0x100, d = 0x200; // same set, 2 ways
    c.access(a);
    c.access(b);
    c.access(d);
    int resident = 0;
    for (Addr x : {a, b, d})
        resident += c.probe(x) ? 1 : 0;
    EXPECT_EQ(resident, 2); // never more lines than ways
}

TEST(Replacement, ArcKeepsReReferencedLineAgainstScan)
{
    // The ARC selling point: a line promoted to the frequency list
    // (two touches) survives a scan of single-use lines that would
    // flush it out of plain LRU.
    Cache c(512, 64, 2, "arc", ReplacementPolicy::Arc);
    Addr hot = 0x000;
    c.access(hot);
    c.access(hot); // promoted to T2
    for (int i = 1; i <= 6; ++i)
        c.access(static_cast<Addr>(i) * 0x100); // same-set scan
    EXPECT_TRUE(c.probe(hot));
}

TEST(Replacement, ArcGhostHitRestoresEvictedLine)
{
    Cache c(512, 64, 2, "arc", ReplacementPolicy::Arc);
    Addr a = 0x000, b = 0x100, d = 0x200;
    c.access(a);
    c.access(a); // a promoted to the frequency list
    c.access(b); // recency list holds b
    c.access(d); // b evicted to the B1 ghost list
    EXPECT_FALSE(c.probe(b));
    // Re-touching b is a miss, but its ghost entry restores it to
    // residency immediately (ARC case II).
    EXPECT_FALSE(c.access(b));
    EXPECT_TRUE(c.probe(b));
    EXPECT_TRUE(c.access(b));
}

TEST(Replacement, ArcLookupMissDoesNotFill)
{
    Cache c(512, 64, 2, "arc", ReplacementPolicy::Arc);
    EXPECT_FALSE(c.lookup(0x0));
    EXPECT_FALSE(c.probe(0x0));
    // A later access still sees a cold line (no ghost was planted).
    EXPECT_FALSE(c.access(0x0));
    EXPECT_TRUE(c.access(0x0));
}

TEST(Replacement, ArcIsDeterministicAcrossRuns)
{
    auto trace = [](Cache &c) {
        std::vector<bool> hits;
        for (int i = 0; i < 200; ++i)
            hits.push_back(c.access((i % 24) * 0x100ull));
        return hits;
    };
    Cache c1(512, 64, 2, "a1", ReplacementPolicy::Arc);
    Cache c2(512, 64, 2, "a2", ReplacementPolicy::Arc);
    EXPECT_EQ(trace(c1), trace(c2));
}

TEST(Replacement, ArcResetClearsAdaptiveState)
{
    Cache c(512, 64, 2, "arc", ReplacementPolicy::Arc);
    for (int i = 0; i < 32; ++i)
        c.access((i % 6) * 0x100ull);
    c.reset();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_FALSE(c.probe(0x0));
    EXPECT_FALSE(c.access(0x0)); // cold again: ghosts cleared too
}

TEST(Replacement, ArcHierarchyTranslation)
{
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 1;
    config.replacementPolicy = 3;
    FunctionalHierarchy h(config);
    EXPECT_EQ(h.l1(0).replacementPolicy(), ReplacementPolicy::Arc);
    EXPECT_EQ(h.l2().replacementPolicy(), ReplacementPolicy::Arc);
}

TEST(Replacement, HierarchyHonoursConfigPolicy)
{
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 1;
    config.replacementPolicy = 1;
    FunctionalHierarchy h(config);
    EXPECT_EQ(h.l1(0).replacementPolicy(), ReplacementPolicy::Fifo);
    EXPECT_EQ(h.l2().replacementPolicy(), ReplacementPolicy::Fifo);
}

TEST(Hierarchy, LoadClassification)
{
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 2;
    FunctionalHierarchy h(config);

    EXPECT_EQ(h.accessLoad(0, 0x0), MemEvent::L2Miss); // cold
    EXPECT_EQ(h.accessLoad(0, 0x0), MemEvent::L1Hit);  // now in L1
    // Core 1 misses its own L1 but hits the shared L2.
    EXPECT_EQ(h.accessLoad(1, 0x0), MemEvent::L2Hit);
    EXPECT_EQ(h.accessLoad(1, 0x0), MemEvent::L1Hit);
}

TEST(Hierarchy, ProbeLoadIsNonMutating)
{
    HardwareConfig config = HardwareConfig::baseline();
    FunctionalHierarchy h(config);
    EXPECT_EQ(h.probeLoad(0, 0x0), MemEvent::L2Miss);
    EXPECT_EQ(h.probeLoad(0, 0x0), MemEvent::L2Miss); // unchanged
    h.accessLoad(0, 0x0);
    EXPECT_EQ(h.probeLoad(0, 0x0), MemEvent::L1Hit);
}

TEST(Hierarchy, EventLatenciesMatchTableI)
{
    HardwareConfig config = HardwareConfig::baseline();
    EXPECT_EQ(FunctionalHierarchy::eventLatency(MemEvent::L1Hit, config),
              25u);
    EXPECT_EQ(FunctionalHierarchy::eventLatency(MemEvent::L2Hit, config),
              120u);
    EXPECT_EQ(FunctionalHierarchy::eventLatency(MemEvent::L2Miss,
                                                config),
              420u);
}

TEST(Hierarchy, PerCoreL1Isolation)
{
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 4;
    FunctionalHierarchy h(config);
    h.accessLoad(0, 0x1000);
    EXPECT_TRUE(h.l1(0).probe(0x1000));
    EXPECT_FALSE(h.l1(1).probe(0x1000));
    EXPECT_TRUE(h.l2().probe(0x1000));
}

TEST(Hierarchy, ResetClearsAllLevels)
{
    HardwareConfig config = HardwareConfig::baseline();
    FunctionalHierarchy h(config);
    h.accessLoad(0, 0x1000);
    h.reset();
    EXPECT_EQ(h.probeLoad(0, 0x1000), MemEvent::L2Miss);
    EXPECT_EQ(h.l2().accesses(), 0u);
}

} // namespace
} // namespace gpumech
