/**
 * @file
 * End-to-end tests for the GPUMech pipeline: model-level ordering,
 * determinism, the profiler's configuration-reuse path, and accuracy
 * envelopes against the detailed timing simulator on the micro suite.
 */

#include <gtest/gtest.h>

#include "core/gpumech.hh"
#include "timing/gpu_timing.hh"
#include "workloads/workload.hh"

namespace gpumech
{
namespace
{

HardwareConfig
smallConfig()
{
    HardwareConfig c = HardwareConfig::baseline();
    c.numCores = 2;
    c.warpsPerCore = 8;
    return c;
}

TEST(GpuMech, ModelLevelNames)
{
    EXPECT_EQ(toString(ModelLevel::MT), "MT");
    EXPECT_EQ(toString(ModelLevel::MT_MSHR), "MT_MSHR");
    EXPECT_EQ(toString(ModelLevel::MT_MSHR_BAND), "MT_MSHR_BAND");
}

TEST(GpuMech, CpiIsSumOfParts)
{
    HardwareConfig config = smallConfig();
    KernelTrace kernel =
        workloadByName("micro_divergent8").generate(config);
    GpuMechResult r = runGpuMech(kernel, config, GpuMechOptions{});
    EXPECT_NEAR(r.cpi, r.cpiMultithreading + r.cpiContention, 1e-12);
    EXPECT_NEAR(r.ipc * r.cpi, 1.0, 1e-9);
}

TEST(GpuMech, ModelLevelsOnlyAddCpi)
{
    HardwareConfig config = smallConfig();
    KernelTrace kernel =
        workloadByName("micro_divergent32").generate(config);
    GpuMechProfiler profiler(kernel, config);
    double mt =
        profiler.evaluate(SchedulingPolicy::RoundRobin, ModelLevel::MT)
            .cpi;
    double mshr = profiler
                      .evaluate(SchedulingPolicy::RoundRobin,
                                ModelLevel::MT_MSHR)
                      .cpi;
    double band = profiler
                      .evaluate(SchedulingPolicy::RoundRobin,
                                ModelLevel::MT_MSHR_BAND)
                      .cpi;
    EXPECT_LE(mt, mshr + 1e-12);
    EXPECT_LE(mshr, band + 1e-12);
}

TEST(GpuMech, Deterministic)
{
    HardwareConfig config = smallConfig();
    KernelTrace kernel =
        workloadByName("micro_divergent8").generate(config);
    GpuMechResult a = runGpuMech(kernel, config, GpuMechOptions{});
    GpuMechResult b = runGpuMech(kernel, config, GpuMechOptions{});
    EXPECT_DOUBLE_EQ(a.cpi, b.cpi);
    EXPECT_EQ(a.repWarpIndex, b.repWarpIndex);
}

TEST(GpuMech, ProfilerEvaluateMatchesRunGpuMech)
{
    HardwareConfig config = smallConfig();
    KernelTrace kernel =
        workloadByName("micro_stream").generate(config);
    GpuMechResult direct = runGpuMech(kernel, config, GpuMechOptions{});
    GpuMechProfiler profiler(kernel, config);
    GpuMechResult via =
        profiler.evaluate(SchedulingPolicy::RoundRobin);
    EXPECT_DOUBLE_EQ(direct.cpi, via.cpi);
    EXPECT_EQ(direct.repWarpIndex, via.repWarpIndex);
}

TEST(GpuMech, EvaluateAtSameConfigMatchesEvaluate)
{
    HardwareConfig config = smallConfig();
    KernelTrace kernel =
        workloadByName("micro_divergent8").generate(config);
    GpuMechProfiler profiler(kernel, config);
    GpuMechResult a = profiler.evaluate(SchedulingPolicy::RoundRobin);
    GpuMechResult b =
        profiler.evaluateAt(config, SchedulingPolicy::RoundRobin);
    EXPECT_NEAR(a.cpi, b.cpi, 1e-12);
}

TEST(GpuMech, EvaluateAtRespondsToHardwareChanges)
{
    HardwareConfig config = smallConfig();
    KernelTrace kernel =
        workloadByName("micro_divergent32").generate(config);
    GpuMechProfiler profiler(kernel, config);
    double base =
        profiler.evaluate(SchedulingPolicy::RoundRobin).cpi;

    HardwareConfig more_mshrs = config;
    more_mshrs.numMshrs = 256;
    double relaxed =
        profiler.evaluateAt(more_mshrs, SchedulingPolicy::RoundRobin)
            .cpi;
    EXPECT_LE(relaxed, base + 1e-9);

    HardwareConfig slow_dram = config;
    slow_dram.dramBandwidthGBs = 24.0;
    double squeezed =
        profiler.evaluateAt(slow_dram, SchedulingPolicy::RoundRobin)
            .cpi;
    EXPECT_GE(squeezed, base - 1e-9);
}

TEST(GpuMech, ComputeKernelHasNoContention)
{
    HardwareConfig config = smallConfig();
    KernelTrace kernel =
        workloadByName("micro_compute_chain").generate(config);
    GpuMechResult r = runGpuMech(kernel, config, GpuMechOptions{});
    EXPECT_DOUBLE_EQ(r.cpiContention, 0.0);
}

TEST(GpuMech, PredictionWithinPhysicalBounds)
{
    HardwareConfig config = smallConfig();
    for (const auto &workload : microWorkloads()) {
        KernelTrace kernel = workload.generate(config);
        GpuMechResult r = runGpuMech(kernel, config, GpuMechOptions{});
        EXPECT_GE(r.cpi, 1.0 / config.issueRate - 1e-9)
            << workload.name;
        EXPECT_LT(r.cpi, 1e5) << workload.name;
    }
}

class MicroAccuracy
    : public ::testing::TestWithParam<
          std::tuple<const char *, SchedulingPolicy>>
{
};

TEST_P(MicroAccuracy, TracksOracleWithinFiftyPercent)
{
    // Accuracy envelope on the well-behaved micro kernels: the
    // model's headline claim is ~13-20% average error; 50% per-kernel
    // is a loose regression guard.
    auto [name, policy] = GetParam();
    HardwareConfig config = smallConfig();
    KernelTrace kernel = workloadByName(name).generate(config);

    GpuMechOptions options;
    options.policy = policy;
    GpuMechResult model = runGpuMech(kernel, config, options);
    GpuTiming oracle(kernel, config, policy);
    double oracle_ipc = 1.0 / oracle.run().cpi();
    double error = std::abs(model.ipc - oracle_ipc) / oracle_ipc;
    EXPECT_LT(error, 0.5) << name << " " << toString(policy);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, MicroAccuracy,
    ::testing::Combine(
        ::testing::Values("micro_compute_chain", "micro_stream",
                          "micro_divergent8", "micro_divergent32",
                          "micro_l1_resident", "micro_write_burst"),
        ::testing::Values(SchedulingPolicy::RoundRobin,
                          SchedulingPolicy::GreedyThenOldest)));

TEST(GpuMech, RepresentativeWarpRecorded)
{
    HardwareConfig config = smallConfig();
    KernelTrace kernel =
        workloadByName("micro_control_divergent").generate(config);
    GpuMechResult r = runGpuMech(kernel, config, GpuMechOptions{});
    EXPECT_LT(r.repWarpIndex, kernel.numWarps());
    EXPECT_GT(r.repNumIntervals, 0u);
    EXPECT_GT(r.repWarpPerf, 0.0);
    EXPECT_LE(r.repWarpPerf, config.issueRate);
}

} // namespace
} // namespace gpumech
