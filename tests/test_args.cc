/**
 * @file
 * Unit tests for the command-line argument parser.
 */

#include <gtest/gtest.h>

#include "common/args.hh"

namespace gpumech
{
namespace
{

TEST(Args, PositionalsInOrder)
{
    ArgParser a({"model", "srad_kernel1"});
    EXPECT_EQ(a.numPositional(), 2u);
    EXPECT_EQ(a.positional(0), "model");
    EXPECT_EQ(a.positional(1), "srad_kernel1");
    EXPECT_EQ(a.positional(2, "fallback"), "fallback");
}

TEST(Args, KeyValueWithSpace)
{
    ArgParser a({"--warps", "16"});
    EXPECT_TRUE(a.has("warps"));
    EXPECT_EQ(a.get("warps"), "16");
    EXPECT_EQ(a.getUint("warps", 0), 16u);
}

TEST(Args, KeyValueWithEquals)
{
    ArgParser a({"--bw=96.5"});
    auto bw = a.getDouble("bw", 0.0);
    ASSERT_TRUE(bw.ok());
    EXPECT_DOUBLE_EQ(bw.value(), 96.5);
}

TEST(Args, BareFlagBeforeAnotherOption)
{
    ArgParser a({"--model-sfu", "--warps", "8"});
    EXPECT_TRUE(a.has("model-sfu"));
    EXPECT_EQ(a.get("model-sfu", "unset"), "unset"); // valueless
    EXPECT_EQ(a.getUint("warps", 0), 8u);
}

TEST(Args, TrailingBareFlag)
{
    ArgParser a({"compare", "--model-sfu"});
    EXPECT_TRUE(a.has("model-sfu"));
    EXPECT_EQ(a.positional(0), "compare");
}

TEST(Args, MixedPositionalsAndOptions)
{
    ArgParser a({"dump-trace", "--warps=4", "vectorAdd", "/tmp/x",
                 "--policy", "gto"});
    EXPECT_EQ(a.positional(0), "dump-trace");
    EXPECT_EQ(a.positional(1), "vectorAdd");
    EXPECT_EQ(a.positional(2), "/tmp/x");
    EXPECT_EQ(a.getUint("warps", 0), 4u);
    EXPECT_EQ(a.get("policy"), "gto");
}

TEST(Args, DefaultsWhenAbsent)
{
    ArgParser a({});
    EXPECT_FALSE(a.has("warps"));
    EXPECT_EQ(a.getUint("warps", 32), 32u);
    auto bw = a.getDouble("bw", 192.0);
    ASSERT_TRUE(bw.ok());
    EXPECT_DOUBLE_EQ(bw.value(), 192.0);
    EXPECT_EQ(a.get("policy", "rr"), "rr");
}

TEST(Args, ArgcArgvConstructorSkipsProgramName)
{
    const char *argv[] = {"gpumech", "list", "--warps", "8"};
    ArgParser a(4, argv);
    EXPECT_EQ(a.positional(0), "list");
    EXPECT_EQ(a.getUint("warps", 0), 8u);
}

TEST(Args, GetPositiveUintAcceptsPlainPositiveIntegers)
{
    ArgParser a({"--warps", "16", "--mshrs=4294967295"});
    auto warps = a.getPositiveUint("warps", 1);
    ASSERT_TRUE(warps.ok());
    EXPECT_EQ(warps.value(), 16u);
    auto mshrs = a.getPositiveUint("mshrs", 1);
    ASSERT_TRUE(mshrs.ok());
    EXPECT_EQ(mshrs.value(), 4294967295u);
    // Absent options return the fallback unchecked (0 = "auto").
    auto jobs = a.getPositiveUint("jobs", 0);
    ASSERT_TRUE(jobs.ok());
    EXPECT_EQ(jobs.value(), 0u);
}

TEST(Args, GetPositiveUintRejectsZeroNegativeAndJunk)
{
    // "-1" is the important case: strtoul silently wraps it to
    // 4294967295, which getUint would accept.
    for (const char *bad : {"0", "-1", "-2", "1.5", "eight", "1e3",
                            "0x10", " 8", "4294967296"}) {
        ArgParser a({"--warps", bad});
        auto r = a.getPositiveUint("warps", 32);
        EXPECT_FALSE(r.ok()) << "accepted --warps " << bad;
        EXPECT_EQ(r.status().code(), StatusCode::InvalidArgument);
        EXPECT_NE(r.status().message().find("--warps"),
                  std::string::npos)
            << r.status().message();
    }
}

TEST(ArgsDeath, NonNumericValueIsFatal)
{
    ArgParser a({"--warps", "eight"});
    EXPECT_DEATH(
        { [[maybe_unused]] auto v = a.getUint("warps", 0); },
        "expects an integer");
}

TEST(Args, GetDoubleAcceptsNumbersAndFallsBack)
{
    ArgParser a({"--bw", "256", "--mrc-rate=0.5"});
    auto bw = a.getDouble("bw", 0.0);
    ASSERT_TRUE(bw.ok());
    EXPECT_DOUBLE_EQ(bw.value(), 256.0);
    auto rate = a.getDouble("mrc-rate", 1.0);
    ASSERT_TRUE(rate.ok());
    EXPECT_DOUBLE_EQ(rate.value(), 0.5);
    auto absent = a.getDouble("max-cost", 7.25);
    ASSERT_TRUE(absent.ok());
    EXPECT_DOUBLE_EQ(absent.value(), 7.25);
}

TEST(Args, GetDoubleRejectsJunkAndNonFinite)
{
    // The old getDouble called fatal() on junk — one bad "--bw fast"
    // killed the whole daemon — and silently accepted inf/nan, which
    // slip past HardwareConfig's "> 0" validation. All of these must
    // come back as InvalidArgument now.
    for (const char *bad : {"fast", "12x", "", " 8", "nan", "NaN",
                            "inf", "-inf", "infinity", "1e999"}) {
        ArgParser a({"--bw", bad});
        auto r = a.getDouble("bw", 1.0);
        if (std::string(bad).empty()) {
            // Valueless option: fallback, same as getUint/get.
            ASSERT_TRUE(r.ok());
            continue;
        }
        EXPECT_FALSE(r.ok()) << "accepted --bw " << bad;
        EXPECT_EQ(r.status().code(), StatusCode::InvalidArgument);
        EXPECT_NE(r.status().message().find("--bw"), std::string::npos)
            << r.status().message();
    }
}

} // namespace
} // namespace gpumech
