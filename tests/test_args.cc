/**
 * @file
 * Unit tests for the command-line argument parser.
 */

#include <gtest/gtest.h>

#include "common/args.hh"

namespace gpumech
{
namespace
{

TEST(Args, PositionalsInOrder)
{
    ArgParser a({"model", "srad_kernel1"});
    EXPECT_EQ(a.numPositional(), 2u);
    EXPECT_EQ(a.positional(0), "model");
    EXPECT_EQ(a.positional(1), "srad_kernel1");
    EXPECT_EQ(a.positional(2, "fallback"), "fallback");
}

TEST(Args, KeyValueWithSpace)
{
    ArgParser a({"--warps", "16"});
    EXPECT_TRUE(a.has("warps"));
    EXPECT_EQ(a.get("warps"), "16");
    EXPECT_EQ(a.getUint("warps", 0), 16u);
}

TEST(Args, KeyValueWithEquals)
{
    ArgParser a({"--bw=96.5"});
    EXPECT_DOUBLE_EQ(a.getDouble("bw", 0.0), 96.5);
}

TEST(Args, BareFlagBeforeAnotherOption)
{
    ArgParser a({"--model-sfu", "--warps", "8"});
    EXPECT_TRUE(a.has("model-sfu"));
    EXPECT_EQ(a.get("model-sfu", "unset"), "unset"); // valueless
    EXPECT_EQ(a.getUint("warps", 0), 8u);
}

TEST(Args, TrailingBareFlag)
{
    ArgParser a({"compare", "--model-sfu"});
    EXPECT_TRUE(a.has("model-sfu"));
    EXPECT_EQ(a.positional(0), "compare");
}

TEST(Args, MixedPositionalsAndOptions)
{
    ArgParser a({"dump-trace", "--warps=4", "vectorAdd", "/tmp/x",
                 "--policy", "gto"});
    EXPECT_EQ(a.positional(0), "dump-trace");
    EXPECT_EQ(a.positional(1), "vectorAdd");
    EXPECT_EQ(a.positional(2), "/tmp/x");
    EXPECT_EQ(a.getUint("warps", 0), 4u);
    EXPECT_EQ(a.get("policy"), "gto");
}

TEST(Args, DefaultsWhenAbsent)
{
    ArgParser a({});
    EXPECT_FALSE(a.has("warps"));
    EXPECT_EQ(a.getUint("warps", 32), 32u);
    EXPECT_DOUBLE_EQ(a.getDouble("bw", 192.0), 192.0);
    EXPECT_EQ(a.get("policy", "rr"), "rr");
}

TEST(Args, ArgcArgvConstructorSkipsProgramName)
{
    const char *argv[] = {"gpumech", "list", "--warps", "8"};
    ArgParser a(4, argv);
    EXPECT_EQ(a.positional(0), "list");
    EXPECT_EQ(a.getUint("warps", 0), 8u);
}

TEST(ArgsDeath, NonNumericValueIsFatal)
{
    ArgParser a({"--warps", "eight"});
    EXPECT_DEATH(
        { [[maybe_unused]] auto v = a.getUint("warps", 0); },
        "expects an integer");
}

} // namespace
} // namespace gpumech
