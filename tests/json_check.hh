/**
 * @file
 * Minimal recursive-descent JSON validator for tests.
 *
 * The production code only writes JSON (common/json.hh, the Chrome
 * trace exporter); tests need an independent reader to assert the
 * output is well-formed without trusting the writer's own escaping.
 * Validation only — no DOM is built. Strict where it matters for the
 * emitted dialects: string escapes, number syntax, matched brackets,
 * no trailing commas, nothing after the top-level value.
 */

#ifndef GPUMECH_TESTS_JSON_CHECK_HH
#define GPUMECH_TESTS_JSON_CHECK_HH

#include <cctype>
#include <string>

namespace gpumech::testing
{

class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : text(text) {}

    /** True when the whole input is exactly one valid JSON value. */
    bool
    valid()
    {
        pos = 0;
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos == text.size();
    }

  private:
    bool
    value()
    {
        if (pos >= text.size())
            return false;
        switch (text[pos]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool
    object()
    {
        ++pos; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            if (peek() == '}') {
                ++pos;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos; // '['
        skipWs();
        if (peek() == ']') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            if (peek() == ']') {
                ++pos;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos;
        while (pos < text.size()) {
            unsigned char c = text[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (c < 0x20)
                return false; // raw control char: must be escaped
            if (c == '\\') {
                ++pos;
                if (pos >= text.size())
                    return false;
                char e = text[pos];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos;
                        if (pos >= text.size() ||
                            !std::isxdigit(
                                static_cast<unsigned char>(text[pos])))
                            return false;
                    }
                } else if (e != '"' && e != '\\' && e != '/' &&
                           e != 'b' && e != 'f' && e != 'n' &&
                           e != 'r' && e != 't') {
                    return false;
                }
            }
            ++pos;
        }
        return false; // unterminated
    }

    bool
    number()
    {
        std::size_t start = pos;
        if (peek() == '-')
            ++pos;
        if (!digits())
            return false;
        if (peek() == '.') {
            ++pos;
            if (!digits())
                return false;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos;
            if (peek() == '+' || peek() == '-')
                ++pos;
            if (!digits())
                return false;
        }
        return pos > start;
    }

    bool
    digits()
    {
        std::size_t start = pos;
        while (pos < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[pos])))
            ++pos;
        return pos > start;
    }

    bool
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p, ++pos) {
            if (pos >= text.size() || text[pos] != *p)
                return false;
        }
        return true;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    char peek() const { return pos < text.size() ? text[pos] : '\0'; }

    const std::string &text;
    std::size_t pos = 0;
};

/** Convenience wrapper: is @p text exactly one valid JSON value? */
inline bool
isValidJson(const std::string &text)
{
    JsonChecker checker(text);
    return checker.valid();
}

} // namespace gpumech::testing

#endif // GPUMECH_TESTS_JSON_CHECK_HH
