/**
 * @file
 * Tests for HardwareConfig::validate(): every out-of-range field is
 * rejected with InvalidArgument and a message that names the offending
 * field, and every shipped/derived configuration passes.
 */

#include <gtest/gtest.h>

#include "common/config.hh"

namespace gpumech
{
namespace
{

/** Expect rejection whose message names @p field. */
void
expectRejects(const HardwareConfig &config, const std::string &field)
{
    Status s = config.validate();
    ASSERT_FALSE(s.ok()) << "config unexpectedly valid (" << field
                         << ")";
    EXPECT_EQ(s.code(), StatusCode::InvalidArgument) << s.toString();
    EXPECT_NE(s.message().find(field), std::string::npos)
        << "message does not name '" << field << "': " << s.toString();
}

TEST(ConfigValidate, BaselineIsValid)
{
    Status s = HardwareConfig::baseline().validate();
    EXPECT_TRUE(s.ok()) << s.toString();
}

TEST(ConfigValidate, WithIssueWidthStaysValid)
{
    for (std::uint32_t w : {1u, 2u, 4u}) {
        Status s =
            HardwareConfig::baseline().withIssueWidth(w).validate();
        EXPECT_TRUE(s.ok()) << s.toString();
    }
}

TEST(ConfigValidate, RejectsZeroCounts)
{
    struct Case
    {
        const char *field;
        void (*corrupt)(HardwareConfig &);
    };
    const Case cases[] = {
        {"numCores", [](HardwareConfig &c) { c.numCores = 0; }},
        {"simtWidth", [](HardwareConfig &c) { c.simtWidth = 0; }},
        {"warpSize", [](HardwareConfig &c) { c.warpSize = 0; }},
        {"warpsPerCore",
         [](HardwareConfig &c) { c.warpsPerCore = 0; }},
        {"issueWidth", [](HardwareConfig &c) { c.issueWidth = 0; }},
        {"sfuLanes", [](HardwareConfig &c) { c.sfuLanes = 0; }},
        {"numMshrs", [](HardwareConfig &c) { c.numMshrs = 0; }},
    };
    for (const Case &tc : cases) {
        HardwareConfig config = HardwareConfig::baseline();
        tc.corrupt(config);
        expectRejects(config, tc.field);
    }
}

TEST(ConfigValidate, RejectsNonPositiveRates)
{
    HardwareConfig config = HardwareConfig::baseline();
    config.coreFreqGhz = 0.0;
    expectRejects(config, "coreFreqGhz");

    config = HardwareConfig::baseline();
    config.issueRate = -1.0;
    expectRejects(config, "issueRate");

    config = HardwareConfig::baseline();
    config.dramBandwidthGBs = 0.0;
    expectRejects(config, "dramBandwidthGBs");
}

TEST(ConfigValidate, RejectsZeroLatencies)
{
    HardwareConfig config = HardwareConfig::baseline();
    config.latency.sfu = 0;
    expectRejects(config, "latency.sfu");

    config = HardwareConfig::baseline();
    config.l1HitLatency = 0;
    expectRejects(config, "l1HitLatency");

    config = HardwareConfig::baseline();
    config.l2HitLatency = 0;
    expectRejects(config, "l2HitLatency");
}

TEST(ConfigValidate, RejectsBadCacheGeometry)
{
    // Non-power-of-two line size.
    HardwareConfig config = HardwareConfig::baseline();
    config.l1LineBytes = 96;
    expectRejects(config, "l1LineBytes");

    // Zero associativity.
    config = HardwareConfig::baseline();
    config.l2Assoc = 0;
    expectRejects(config, "l2Assoc");

    // Size not a multiple of line * assoc.
    config = HardwareConfig::baseline();
    config.l1SizeBytes = config.l1LineBytes * config.l1Assoc + 1;
    expectRejects(config, "l1SizeBytes");

    config = HardwareConfig::baseline();
    config.l2SizeBytes = 0;
    expectRejects(config, "l2SizeBytes");
}

TEST(ConfigValidate, AcceptsNonPowerOfTwoSetCounts)
{
    // Table I's L2: 768KB / 128B line / 8-way = 768 sets. The cache
    // model indexes by modulo, so this must stay valid.
    HardwareConfig config = HardwareConfig::baseline();
    Status s = config.validate();
    EXPECT_TRUE(s.ok()) << s.toString();
    EXPECT_EQ(config.l2SizeBytes /
                  (config.l2LineBytes * config.l2Assoc),
              768u);
}

TEST(ConfigValidate, RejectsUnknownReplacementPolicy)
{
    HardwareConfig config = HardwareConfig::baseline();
    config.replacementPolicy = 4; // 0-3 are LRU/FIFO/random/ARC
    expectRejects(config, "replacementPolicy");
}

} // namespace
} // namespace gpumech
