/**
 * @file
 * Tests for the SFU structural-contention extension (the paper's
 * Section IV-B future-work item): oracle-side SFU occupancy and the
 * model-side steady-state term.
 */

#include <gtest/gtest.h>

#include "core/gpumech.hh"
#include "timing/gpu_timing.hh"
#include "trace/trace_builder.hh"
#include "workloads/workload.hh"

namespace gpumech
{
namespace
{

HardwareConfig
oneCore(std::uint32_t sfu_lanes)
{
    HardwareConfig c = HardwareConfig::baseline();
    c.numCores = 1;
    c.warpsPerCore = 4;
    c.sfuLanes = sfu_lanes;
    return c;
}

TEST(SfuExtension, OccupancyCyclesDerivation)
{
    HardwareConfig c = HardwareConfig::baseline();
    EXPECT_EQ(c.sfuOccupancyCycles(), 1u); // balanced default
    c.sfuLanes = 8;
    EXPECT_EQ(c.sfuOccupancyCycles(), 4u);
    c.sfuLanes = 4;
    EXPECT_EQ(c.sfuOccupancyCycles(), 8u);
}

TEST(SfuExtension, BalancedSfuDoesNotSerialize)
{
    // Two warps each issuing one SFU op: with 32 lanes they issue in
    // consecutive cycles.
    HardwareConfig config = oneCore(32);
    KernelTrace kernel("t");
    auto pc = kernel.addStatic(Opcode::Sfu);
    for (std::uint32_t w = 0; w < 2; ++w) {
        TraceBuilder b(kernel, w, 0, config);
        b.compute(pc);
        b.finish();
    }
    GpuTiming sim(kernel, config, SchedulingPolicy::RoundRobin);
    // Second issues at cycle 1, done at 1 + 40.
    EXPECT_EQ(sim.run().totalCycles, 41u);
}

TEST(SfuExtension, NarrowSfuSerializesIssues)
{
    // With 8 lanes one SFU op occupies the unit 4 cycles, so the
    // second warp's op issues at cycle 4.
    HardwareConfig config = oneCore(8);
    KernelTrace kernel("t");
    auto pc = kernel.addStatic(Opcode::Sfu);
    for (std::uint32_t w = 0; w < 2; ++w) {
        TraceBuilder b(kernel, w, 0, config);
        b.compute(pc);
        b.finish();
    }
    GpuTiming sim(kernel, config, SchedulingPolicy::RoundRobin);
    EXPECT_EQ(sim.run().totalCycles, 44u); // 4 + 40
}

TEST(SfuExtension, NonSfuWarpsFillSfuGaps)
{
    // While the SFU is busy, the scheduler issues other warps' ALU
    // instructions: the ALU warp is not delayed.
    HardwareConfig config = oneCore(8);
    KernelTrace kernel("t");
    auto pc_sfu = kernel.addStatic(Opcode::Sfu);
    auto pc_alu = kernel.addStatic(Opcode::IntAlu);
    {
        TraceBuilder b(kernel, 0, 0, config);
        b.compute(pc_sfu);
        b.compute(pc_sfu);
        b.finish();
    }
    {
        TraceBuilder b(kernel, 1, 0, config);
        for (int i = 0; i < 3; ++i)
            b.compute(pc_alu);
        b.finish();
    }
    GpuTiming sim(kernel, config, SchedulingPolicy::RoundRobin);
    TimingStats s = sim.run();
    // Warp0 SFU at 0 and 4; warp1 ALUs at 1,2,3 -> last ALU done 23,
    // second SFU done 44.
    EXPECT_EQ(s.totalCycles, 44u);
}

TEST(SfuExtension, ModelTermZeroWhenBalanced)
{
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 2;
    config.warpsPerCore = 8;
    KernelTrace kernel =
        workloadByName("micro_sfu_heavy").generate(config);
    GpuMechOptions options;
    options.modelSfu = true;
    GpuMechResult r = runGpuMech(kernel, config, options);
    EXPECT_DOUBLE_EQ(r.contention.sfuCpi, 0.0);
}

TEST(SfuExtension, ModelTermGrowsAsLanesShrink)
{
    double prev = -1.0;
    for (std::uint32_t lanes : {32u, 8u, 4u}) {
        HardwareConfig config = HardwareConfig::baseline();
        config.numCores = 2;
        config.warpsPerCore = 8;
        config.sfuLanes = lanes;
        KernelTrace kernel =
            workloadByName("micro_sfu_heavy").generate(config);
        GpuMechOptions options;
        options.modelSfu = true;
        GpuMechResult r = runGpuMech(kernel, config, options);
        EXPECT_GE(r.contention.sfuCpi, prev);
        prev = r.contention.sfuCpi;
    }
    EXPECT_GT(prev, 0.0);
}

TEST(SfuExtension, ExtensionImprovesAccuracyUnderContention)
{
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 2;
    config.warpsPerCore = 8;
    config.sfuLanes = 4;
    KernelTrace kernel =
        workloadByName("micro_sfu_heavy").generate(config);

    GpuTiming oracle(kernel, config, SchedulingPolicy::RoundRobin);
    double oracle_ipc = 1.0 / oracle.run().cpi();

    GpuMechProfiler profiler(kernel, config);
    double base_err = std::abs(
        profiler.evaluate(SchedulingPolicy::RoundRobin).ipc -
        oracle_ipc) / oracle_ipc;
    double ext_err = std::abs(
        profiler.evaluate(SchedulingPolicy::RoundRobin,
                          ModelLevel::MT_MSHR_BAND, true).ipc -
        oracle_ipc) / oracle_ipc;
    EXPECT_LT(ext_err, base_err);
}

TEST(SfuExtension, StackGainsSfuCategory)
{
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 2;
    config.warpsPerCore = 8;
    config.sfuLanes = 4;
    KernelTrace kernel =
        workloadByName("micro_sfu_heavy").generate(config);
    GpuMechOptions options;
    options.modelSfu = true;
    GpuMechResult r = runGpuMech(kernel, config, options);
    EXPECT_GT(r.stack[StallType::Sfu], 0.0);
    EXPECT_NEAR(r.stack.total(), r.cpi, 1e-6);
    EXPECT_EQ(toString(StallType::Sfu), "SFU");
}

TEST(SfuExtension, OffByDefault)
{
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 2;
    config.warpsPerCore = 8;
    config.sfuLanes = 4;
    KernelTrace kernel =
        workloadByName("micro_sfu_heavy").generate(config);
    GpuMechResult r = runGpuMech(kernel, config, GpuMechOptions{});
    EXPECT_DOUBLE_EQ(r.contention.sfuCpi, 0.0);
    EXPECT_DOUBLE_EQ(r.stack[StallType::Sfu], 0.0);
}

} // namespace
} // namespace gpumech
