/**
 * @file
 * Tests for the multithreading model (Section IV-A): the
 * non-overlapped instruction counts of Eq. 10-16 (including the
 * paper's Figure 8 worked example) and the CPI assembly of Eq. 7-8.
 */

#include <gtest/gtest.h>

#include "core/multiwarp.hh"

namespace gpumech
{
namespace
{

HardwareConfig
baseConfig()
{
    return HardwareConfig::baseline(); // issueRate 1.0
}

/** The paper's Figure 8 interval: 3 instructions, 6 stall cycles. */
IntervalProfile
figure8Profile()
{
    IntervalProfile p;
    p.intervals.push_back(
        Interval{3, 6.0, StallCause::Memory, 0, 0, 0, 0});
    return p;
}

TEST(Multiwarp, IssueProbabilityEq9)
{
    IntervalProfile p = figure8Profile();
    // 3 insts / (3 + 6) cycles.
    EXPECT_NEAR(p.warpPerf(1.0), 1.0 / 3.0, 1e-12);
}

TEST(Multiwarp, RRNonoverlappedFigure8)
{
    // Eq. 10-11 on the Figure 8 interval with 4 warps:
    // waiting slots = 2, issue prob = 1/3, remaining warps = 3
    // -> 1/3 * 3 * 2 = 2 non-overlapped instructions.
    Interval interval{3, 6.0, StallCause::Memory, 0, 0, 0, 0};
    EXPECT_NEAR(nonoverlappedRR(interval, 1.0 / 3.0, 4), 2.0, 1e-12);
}

TEST(Multiwarp, RRSingleInstIntervalHasNoWaitingSlots)
{
    Interval interval{1, 10.0, StallCause::Memory, 0, 0, 0, 0};
    EXPECT_DOUBLE_EQ(nonoverlappedRR(interval, 0.5, 8), 0.0);
}

TEST(Multiwarp, GTONonoverlappedFigure8)
{
    // Eq. 12-16 on the Figure 8 interval with 4 warps:
    // prob_in_stall = min(1/3 * 6, 1) = 1; issue warps = 3;
    // issue insts = 3 (avg interval insts) * 3 = 9;
    // non-overlapped = max(9 - 6, 0) = 3 (the paper's W3 case).
    Interval interval{3, 6.0, StallCause::Memory, 0, 0, 0, 0};
    EXPECT_NEAR(nonoverlappedGTO(interval, 1.0 / 3.0, 3.0, 4, 1.0),
                3.0, 1e-12);
}

TEST(Multiwarp, GTOShortStallScalesByProbability)
{
    // prob_in_stall = min(0.1 * 2, 1) = 0.2; issue warps = 0.2 * 3;
    // issue insts = 5 * 0.6 = 3; non-overlapped = max(3 - 2, 0) = 1.
    Interval interval{5, 2.0, StallCause::Compute, 0, 0, 0, 0};
    EXPECT_NEAR(nonoverlappedGTO(interval, 0.1, 5.0, 4, 1.0), 1.0,
                1e-12);
}

TEST(Multiwarp, GTOFullyHiddenWhenFewInsts)
{
    // Issue insts below the stall length: everything overlaps.
    Interval interval{2, 100.0, StallCause::Memory, 0, 0, 0, 0};
    EXPECT_DOUBLE_EQ(nonoverlappedGTO(interval, 0.02, 2.0, 4, 1.0),
                     0.0);
}

TEST(Multiwarp, SingleWarpCpiIsSingleWarpCycles)
{
    HardwareConfig config = baseConfig();
    IntervalProfile p = figure8Profile();
    MultithreadingResult r =
        modelMultithreading(p, 1, config, SchedulingPolicy::RoundRobin);
    // One warp: 9 cycles for 3 insts.
    EXPECT_NEAR(r.cpi, 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(r.nonoverlappedInsts, 0.0);
}

TEST(Multiwarp, RRFigure8FourWarps)
{
    HardwareConfig config = baseConfig();
    IntervalProfile p = figure8Profile();
    MultithreadingResult r =
        modelMultithreading(p, 4, config, SchedulingPolicy::RoundRobin);
    // cycles = 9 + 2 = 11 for 12 instructions, clamped to the issue
    // bound of 12 cycles -> CPI exactly 1.
    EXPECT_NEAR(r.cpi, 1.0, 1e-12);
    EXPECT_NEAR(r.nonoverlappedInsts, 2.0, 1e-12);
}

TEST(Multiwarp, CpiNeverBelowIssueBound)
{
    HardwareConfig config = baseConfig();
    IntervalProfile p = figure8Profile();
    for (std::uint32_t warps : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
        for (auto policy : {SchedulingPolicy::RoundRobin,
                            SchedulingPolicy::GreedyThenOldest}) {
            MultithreadingResult r =
                modelMultithreading(p, warps, config, policy);
            EXPECT_GE(r.cpi, 1.0 / config.issueRate - 1e-12)
                << warps << " " << toString(policy);
        }
    }
}

TEST(Multiwarp, CpiNeverAboveSerialization)
{
    // Multithreading cannot be slower than running warps one after
    // another.
    HardwareConfig config = baseConfig();
    IntervalProfile p;
    p.intervals.push_back(
        Interval{1, 1000.0, StallCause::Memory, 0, 0, 0, 0});
    for (std::uint32_t warps : {2u, 4u, 32u}) {
        MultithreadingResult r = modelMultithreading(
            p, warps, config, SchedulingPolicy::RoundRobin);
        double serial_cpi = p.totalCycles(1.0); // per-inst, per warp
        EXPECT_LE(r.cpi, serial_cpi + 1e-9);
    }
}

TEST(Multiwarp, MoreWarpsNeverSlowerUnderRR)
{
    HardwareConfig config = baseConfig();
    IntervalProfile p;
    p.intervals.push_back(
        Interval{4, 40.0, StallCause::Memory, 0, 0, 0, 0});
    p.intervals.push_back(
        Interval{2, 25.0, StallCause::Compute, 0, 0, 0, 0});
    double last = 1e100;
    for (std::uint32_t warps : {1u, 2u, 4u, 8u, 16u, 32u}) {
        MultithreadingResult r = modelMultithreading(
            p, warps, config, SchedulingPolicy::RoundRobin);
        EXPECT_LE(r.cpi, last + 1e-12) << warps << " warps";
        last = r.cpi;
    }
}

TEST(Multiwarp, StallFreeProfileStaysAtIssueBound)
{
    HardwareConfig config = baseConfig();
    IntervalProfile p;
    p.intervals.push_back(
        Interval{100, 0.0, StallCause::None, 0, 0, 0, 0});
    for (auto policy : {SchedulingPolicy::RoundRobin,
                        SchedulingPolicy::GreedyThenOldest}) {
        MultithreadingResult r =
            modelMultithreading(p, 8, config, policy);
        EXPECT_NEAR(r.cpi, 1.0, 1e-9);
    }
}

TEST(Multiwarp, IpcIsReciprocalOfCpi)
{
    HardwareConfig config = baseConfig();
    IntervalProfile p = figure8Profile();
    MultithreadingResult r = modelMultithreading(
        p, 2, config, SchedulingPolicy::GreedyThenOldest);
    EXPECT_NEAR(r.ipc * r.cpi, 1.0, 1e-12);
}

class WarpCountSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(WarpCountSweep, GtoHidesAtLeastAsWellAsItsBounds)
{
    // Sanity envelope for both policies across warp counts: CPI in
    // [issue bound, single-warp CPI].
    HardwareConfig config = baseConfig();
    IntervalProfile p;
    p.intervals.push_back(
        Interval{5, 60.0, StallCause::Memory, 0, 0, 0, 0});
    p.intervals.push_back(
        Interval{3, 20.0, StallCause::Compute, 0, 0, 0, 0});
    double single_cpi = p.totalCycles(1.0) /
                        static_cast<double>(p.totalInsts());
    for (auto policy : {SchedulingPolicy::RoundRobin,
                        SchedulingPolicy::GreedyThenOldest}) {
        MultithreadingResult r =
            modelMultithreading(p, GetParam(), config, policy);
        EXPECT_GE(r.cpi, 1.0 - 1e-12);
        EXPECT_LE(r.cpi, single_cpi + 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(Warps, WarpCountSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 24u,
                                           32u, 48u, 64u));

} // namespace
} // namespace gpumech
