/**
 * @file
 * Tests for the binary columnar .gmt trace format: round-trip
 * fixpoints, golden equality against the text parser per workload
 * archetype, the version/endianness/layout refusal paths, every
 * corruption class with its distinct StatusCode and byte offset, the
 * streaming chunked reader, the trace-set streaming pipeline, and
 * model-output bit-identity between text- and binary-loaded traces.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "collector/input_collector.hh"
#include "common/isolation.hh"
#include "common/mmap_file.hh"
#include "core/gpumech.hh"
#include "trace/gmt_format.hh"
#include "trace/trace_io.hh"
#include "workloads/workload.hh"

namespace gpumech
{
namespace
{

HardwareConfig
smallConfig()
{
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 2;
    config.warpsPerCore = 4;
    return config;
}

KernelTrace
sampleKernel(const char *name = "vectorAdd")
{
    return workloadByName(name).generate(smallConfig());
}

// ---- byte-patching helpers ------------------------------------------
//
// On-disk layout constants (must match gmt_format.cc): 32-byte header
// (sectionCount at 20, tableChecksum at 24), then 40-byte table
// entries (id +0, offset +8, size +16, count +24, checksum +32).

constexpr std::size_t hdrSectionCount = 20;
constexpr std::size_t hdrTableChecksum = 24;
constexpr std::size_t tableStart = 32;
constexpr std::size_t entrySize = 40;

std::uint64_t
fnv(const std::string &bytes, std::size_t off, std::size_t n)
{
    std::uint64_t h = 1469598103934665603ull;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= static_cast<std::uint8_t>(bytes[off + i]);
        h *= 1099511628211ull;
    }
    return h;
}

template <typename T>
T
peek(const std::string &bytes, std::size_t off)
{
    T v;
    std::memcpy(&v, bytes.data() + off, sizeof(T));
    return v;
}

template <typename T>
void
poke(std::string &bytes, std::size_t off, T v)
{
    std::memcpy(bytes.data() + off, &v, sizeof(T));
}

/** Table-entry position of section @p id; fatal when absent. */
std::size_t
entryOf(const std::string &bytes, std::uint32_t id)
{
    auto n = peek<std::uint32_t>(bytes, hdrSectionCount);
    for (std::uint32_t i = 0; i < n; ++i) {
        std::size_t at = tableStart + i * entrySize;
        if (peek<std::uint32_t>(bytes, at) == id)
            return at;
    }
    ADD_FAILURE() << "no section with id " << id;
    return tableStart;
}

/** Re-seal the table checksum after editing table bytes. */
void
resealTable(std::string &bytes)
{
    auto n = peek<std::uint32_t>(bytes, hdrSectionCount);
    poke<std::uint64_t>(bytes, hdrTableChecksum,
                        fnv(bytes, tableStart, n * entrySize));
}

/** Re-seal one section's payload checksum after editing its payload. */
void
resealSection(std::string &bytes, std::uint32_t id)
{
    std::size_t at = entryOf(bytes, id);
    auto off = peek<std::uint64_t>(bytes, at + 8);
    auto size = peek<std::uint64_t>(bytes, at + 16);
    poke<std::uint64_t>(
        bytes, at + 32,
        fnv(bytes, static_cast<std::size_t>(off),
            static_cast<std::size_t>(size)));
    resealTable(bytes);
}

void
expectGmtFailure(const std::string &bytes, StatusCode code,
                 const std::string &needle)
{
    Result<KernelTrace> result = parseGmtString(bytes);
    ASSERT_FALSE(result.ok()) << "input unexpectedly parsed";
    EXPECT_EQ(result.status().code(), code)
        << result.status().toString();
    EXPECT_NE(result.status().message().find(needle),
              std::string::npos)
        << result.status().toString();
    // Hardening parity with the text parser's line numbers: every
    // rejection names the byte offset of the offending structure.
    EXPECT_NE(result.status().message().find("gmt offset"),
              std::string::npos)
        << result.status().toString();
}

// ---- round trips ----------------------------------------------------

TEST(GmtFormat, PackUnpackPackFixpoint)
{
    KernelTrace kernel = sampleKernel();
    std::string text = traceToString(kernel);

    std::string packed = gmtToString(kernel);
    Result<KernelTrace> decoded = parseGmtString(packed);
    ASSERT_TRUE(decoded.ok()) << decoded.status().toString();

    // Unpack reproduces the text serialization bit-identically, and
    // re-packing the decoded trace reproduces the binary image.
    EXPECT_EQ(traceToString(decoded.value()), text);
    EXPECT_EQ(gmtToString(decoded.value()), packed);
}

TEST(GmtFormat, VarintRoundTripsBitIdentically)
{
    KernelTrace kernel = sampleKernel("srad_kernel1");
    GmtWriteOptions varint;
    varint.varintLines = true;
    std::string packed = gmtToString(kernel, varint);
    EXPECT_LT(packed.size(), gmtToString(kernel).size());

    Result<KernelTrace> decoded = parseGmtString(packed);
    ASSERT_TRUE(decoded.ok()) << decoded.status().toString();
    EXPECT_EQ(decoded.value().linePool(), kernel.linePool());
    EXPECT_EQ(traceToString(decoded.value()), traceToString(kernel));
}

TEST(GmtFormat, GoldenEqualityPerArchetype)
{
    // Every micro-suite archetype: the binary decode must reproduce
    // the text parse column for column.
    for (const Workload &w : microWorkloads()) {
        KernelTrace kernel = w.generate(smallConfig());
        Result<KernelTrace> from_text =
            parseTraceString(traceToString(kernel));
        Result<KernelTrace> from_gmt =
            parseGmtString(gmtToString(kernel));
        ASSERT_TRUE(from_text.ok()) << w.name;
        ASSERT_TRUE(from_gmt.ok())
            << w.name << ": " << from_gmt.status().toString();

        const KernelTrace &a = from_text.value();
        const KernelTrace &b = from_gmt.value();
        EXPECT_EQ(a.name(), b.name()) << w.name;
        EXPECT_EQ(a.instPcs(), b.instPcs()) << w.name;
        EXPECT_EQ(a.instOps(), b.instOps()) << w.name;
        EXPECT_EQ(a.instActives(), b.instActives()) << w.name;
        EXPECT_EQ(a.instDeps(), b.instDeps()) << w.name;
        EXPECT_EQ(a.instLineOffsets(), b.instLineOffsets()) << w.name;
        EXPECT_EQ(a.instLineCounts(), b.instLineCounts()) << w.name;
        EXPECT_EQ(a.linePool(), b.linePool()) << w.name;
        EXPECT_EQ(traceToString(a), traceToString(b)) << w.name;
    }
}

TEST(GmtFormat, ChunkedReaderMatchesBufferDecode)
{
    KernelTrace kernel = sampleKernel("srad_kernel1");
    for (bool varint : {false, true}) {
        GmtWriteOptions options;
        options.varintLines = varint;
        std::string packed = gmtToString(kernel, options);

        // Minimum chunk size (4 KiB) forces many refills, including
        // varints straddling chunk boundaries.
        std::istringstream is(packed);
        GmtChunkedReader reader(is, 1);
        Result<KernelTrace> streamed = reader.read();
        ASSERT_TRUE(streamed.ok()) << streamed.status().toString();
        EXPECT_EQ(traceToString(streamed.value()),
                  traceToString(kernel));
        EXPECT_EQ(gmtToString(streamed.value()), gmtToString(kernel));
    }
}

TEST(GmtFormat, ChunkedReaderRejectsTruncation)
{
    std::string bytes = gmtToString(sampleKernel());
    // Cut inside the header, the section table, and a payload: the
    // streaming decoder must fail closed at the stream's end rather
    // than hand back a partial kernel.
    for (std::size_t cut : {std::size_t(10), std::size_t(100),
                            bytes.size() - 16}) {
        std::istringstream is(bytes.substr(0, cut));
        GmtChunkedReader reader(is, 1);
        Result<KernelTrace> result = reader.read();
        ASSERT_FALSE(result.ok()) << "cut at " << cut << " parsed";
        EXPECT_EQ(result.status().code(), StatusCode::TruncatedInput)
            << result.status().toString();
        EXPECT_NE(result.status().message().find("gmt offset"),
                  std::string::npos)
            << result.status().toString();
    }
}

TEST(GmtFormat, ChunkedReaderRejectsMidStreamCorruption)
{
    // Corrupt a payload section that is consumed only after streaming
    // has begun (the header and table validate clean); both the raw
    // and varint encodings must report the mismatch, not crash.
    KernelTrace kernel = sampleKernel("srad_kernel1");
    for (bool varint : {false, true}) {
        GmtWriteOptions options;
        options.varintLines = varint;
        std::string bytes = gmtToString(kernel, options);
        // Flip the recorded checksum of section 7 (inst_pcs) and
        // re-seal the table so only the payload check can object.
        std::size_t at = entryOf(bytes, 7);
        auto sum = peek<std::uint64_t>(bytes, at + 32);
        poke<std::uint64_t>(bytes, at + 32, sum ^ 1);
        resealTable(bytes);

        std::istringstream is(bytes);
        GmtChunkedReader reader(is, 1);
        Result<KernelTrace> result = reader.read();
        ASSERT_FALSE(result.ok()) << "corrupt payload parsed";
        EXPECT_EQ(result.status().code(),
                  StatusCode::ChecksumMismatch)
            << result.status().toString();
        EXPECT_NE(result.status().message().find("inst_pcs"),
                  std::string::npos)
            << result.status().toString();
    }
}

// ---- refusal paths --------------------------------------------------

TEST(GmtFormat, RejectsBadMagic)
{
    std::string bytes = gmtToString(sampleKernel());
    bytes[0] = 'X';
    Result<KernelTrace> result = parseGmtString(bytes);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::ParseError);
    EXPECT_NE(result.status().message().find("magic"),
              std::string::npos);
}

TEST(GmtFormat, RejectsForeignEndianness)
{
    std::string bytes = gmtToString(sampleKernel());
    // Swap the endianness tag bytes: the file of an opposite-endian
    // writer.
    std::swap(bytes[6], bytes[7]);
    expectGmtFailure(bytes, StatusCode::VersionMismatch, "endian");
}

TEST(GmtFormat, RejectsForeignVersion)
{
    std::string bytes = gmtToString(sampleKernel());
    poke<std::uint16_t>(bytes, 4, gmtVersion + 1);
    expectGmtFailure(bytes, StatusCode::VersionMismatch, "version");
}

TEST(GmtFormat, RejectsForeignLayoutToken)
{
    std::string bytes = gmtToString(sampleKernel());
    bytes[8 + 3] = '9'; // "soa1" -> "soa9"
    expectGmtFailure(bytes, StatusCode::VersionMismatch, "layout");
}

TEST(GmtFormat, RejectsUnknownFlags)
{
    std::string bytes = gmtToString(sampleKernel());
    poke<std::uint32_t>(bytes, 16, 1u << 5);
    expectGmtFailure(bytes, StatusCode::ParseError, "flag");
}

// ---- corruption classes ---------------------------------------------

TEST(GmtFormat, RejectsTruncation)
{
    std::string bytes = gmtToString(sampleKernel());
    // Inside the header, inside the table, inside a payload.
    for (std::size_t cut : {std::size_t(10), std::size_t(100),
                            bytes.size() - 16}) {
        expectGmtFailure(bytes.substr(0, cut),
                         StatusCode::TruncatedInput, "gmt offset");
    }
}

TEST(GmtFormat, RejectsTableChecksumFlip)
{
    std::string bytes = gmtToString(sampleKernel());
    bytes[tableStart + 16] ^= 0x01; // a section's size field
    expectGmtFailure(bytes, StatusCode::ChecksumMismatch,
                     "section table");
}

TEST(GmtFormat, RejectsPayloadChecksumFlip)
{
    std::string bytes = gmtToString(sampleKernel());
    std::size_t at = entryOf(bytes, 7); // InstPcs
    auto off = peek<std::uint64_t>(bytes, at + 8);
    bytes[static_cast<std::size_t>(off)] ^= 0x01;
    expectGmtFailure(bytes, StatusCode::ChecksumMismatch,
                     "inst_pcs");
}

TEST(GmtFormat, RejectsDuplicateSection)
{
    std::string bytes = gmtToString(sampleKernel());
    // Rewrite section 5's id to 4: two warp_ids sections.
    poke<std::uint32_t>(bytes, entryOf(bytes, 5), 4);
    resealTable(bytes);
    expectGmtFailure(bytes, StatusCode::DuplicateHeader, "duplicate");
}

TEST(GmtFormat, RejectsUnknownSectionId)
{
    std::string bytes = gmtToString(sampleKernel());
    poke<std::uint32_t>(bytes, entryOf(bytes, 5), 99);
    resealTable(bytes);
    expectGmtFailure(bytes, StatusCode::ParseError,
                     "unknown section id");
}

TEST(GmtFormat, RejectsOverflowCount)
{
    std::string bytes = gmtToString(sampleKernel());
    std::size_t at = entryOf(bytes, 7); // InstPcs
    poke<std::uint64_t>(bytes, at + 24, 1ull << 40);
    resealTable(bytes);
    expectGmtFailure(bytes, StatusCode::Overflow, "record cap");
}

TEST(GmtFormat, RejectsSizeCountDisagreement)
{
    std::string bytes = gmtToString(sampleKernel());
    std::size_t at = entryOf(bytes, 7); // InstPcs (4-byte elements)
    auto count = peek<std::uint64_t>(bytes, at + 24);
    poke<std::uint64_t>(bytes, at + 24, count - 1);
    resealTable(bytes);
    expectGmtFailure(bytes, StatusCode::ParseError, "disagrees");
}

TEST(GmtFormat, RejectsZeroWarpCount)
{
    // A structurally valid file whose kernel has no warps.
    KernelTrace empty("warpless");
    empty.addStatic(Opcode::IntAlu, "nop");
    std::string bytes = gmtToString(empty);
    expectGmtFailure(bytes, StatusCode::OutOfRange,
                     "warp count must be positive");
}

TEST(GmtFormat, RejectsZeroPerWarpInstCount)
{
    std::string bytes = gmtToString(sampleKernel());
    std::size_t at = entryOf(bytes, 6); // WarpInstCounts
    auto off = peek<std::uint64_t>(bytes, at + 8);
    poke<std::uint32_t>(bytes, static_cast<std::size_t>(off), 0);
    resealSection(bytes, 6);
    expectGmtFailure(bytes, StatusCode::OutOfRange, "positive");
}

TEST(GmtFormat, RejectsOpcodeOutsideIsa)
{
    std::string bytes = gmtToString(sampleKernel());
    std::size_t at = entryOf(bytes, 2); // StaticOps
    auto off = peek<std::uint64_t>(bytes, at + 8);
    bytes[static_cast<std::size_t>(off)] = char(0x7F);
    resealSection(bytes, 2);
    expectGmtFailure(bytes, StatusCode::NotFound, "opcode");
}

TEST(GmtFormat, RejectsPcOutOfRange)
{
    std::string bytes = gmtToString(sampleKernel());
    std::size_t at = entryOf(bytes, 7); // InstPcs
    auto off = peek<std::uint64_t>(bytes, at + 8);
    poke<std::uint32_t>(bytes, static_cast<std::size_t>(off),
                        0xFFFF0000u);
    resealSection(bytes, 7);
    expectGmtFailure(bytes, StatusCode::OutOfRange, "gmt offset");
}

// ---- fault injection ------------------------------------------------

TEST(GmtFormat, ParseSiteFaultInjectionFires)
{
    std::string bytes = gmtToString(sampleKernel());
    FaultPlan plan;
    plan.add(FaultInjection{"packed", FaultSite::Parse, 1, 0});
    ScopedEvalContext ctx("packed", CancelToken(), &plan);
    try {
        (void)parseGmtString(bytes);
        FAIL() << "injected parse fault did not fire";
    } catch (const StatusException &e) {
        EXPECT_EQ(e.status().code(), StatusCode::FaultInjected);
    }
}

// ---- file-level loading ---------------------------------------------

class TraceFormatFiles : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Unique per test and process: ctest runs each case as its
        // own process, possibly in parallel, and a shared directory
        // lets one case's TearDown delete another's files.
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir = std::filesystem::temp_directory_path() /
              (std::string("gpumech_gmt_test_") + info->name() + "_" +
               std::to_string(::getpid()));
        std::filesystem::create_directories(dir);
    }

    void TearDown() override { std::filesystem::remove_all(dir); }

    std::string
    path(const char *name) const
    {
        return (dir / name).string();
    }

    std::filesystem::path dir;
};

TEST_F(TraceFormatFiles, LoadTraceFileDetectsFormatByContent)
{
    KernelTrace kernel = sampleKernel();
    // The extensions deliberately lie: detection must sniff content.
    ASSERT_TRUE(
        writeTraceFile(path("text.gmt.txt"), kernel, false).ok());
    {
        std::ofstream os(path("binary.txt"), std::ios::binary);
        writeGmt(os, kernel);
    }

    Result<KernelTrace> text = loadTraceFile(path("text.gmt.txt"));
    Result<KernelTrace> binary = loadTraceFile(path("binary.txt"));
    ASSERT_TRUE(text.ok()) << text.status().toString();
    ASSERT_TRUE(binary.ok()) << binary.status().toString();
    EXPECT_EQ(traceToString(text.value()),
              traceToString(binary.value()));
}

TEST_F(TraceFormatFiles, WriteTraceFileChoosesFormatByExtension)
{
    KernelTrace kernel = sampleKernel();
    ASSERT_TRUE(writeTraceFile(path("k.gmt"), kernel, false).ok());
    ASSERT_TRUE(writeTraceFile(path("k.txt"), kernel, false).ok());

    MmapFile gmt = MmapFile::open(path("k.gmt")).valueOrDie();
    MmapFile txt = MmapFile::open(path("k.txt")).valueOrDie();
    EXPECT_TRUE(looksLikeGmt(gmt.data(), gmt.size()));
    EXPECT_FALSE(looksLikeGmt(txt.data(), txt.size()));
    EXPECT_EQ(gmt.size(), gmtToString(kernel).size());
}

TEST_F(TraceFormatFiles, MissingFileIsNotFound)
{
    Result<KernelTrace> result = loadTraceFile(path("absent.gmt"));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::NotFound);
}

TEST_F(TraceFormatFiles, StreamTraceSetOrdersAndContainsFailures)
{
    HardwareConfig config = smallConfig();
    KernelTrace a = sampleKernel("vectorAdd");
    KernelTrace b = sampleKernel("micro_stream");
    ASSERT_TRUE(writeTraceFile(path("a.gmt"), a, true).ok());
    ASSERT_TRUE(writeTraceFile(path("b.txt"), b, false).ok());
    {
        std::ofstream os(path("corrupt.gmt"), std::ios::binary);
        std::string bytes = gmtToString(a).substr(0, 60);
        os.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size()));
    }

    std::vector<std::string> paths{path("a.gmt"), path("corrupt.gmt"),
                                   path("b.txt")};
    std::vector<std::string> seen;
    std::vector<bool> ok;
    std::vector<CollectorResult> inputs;
    streamTraceSet(paths, config,
                   [&](StreamedTrace &&st) {
                       seen.push_back(st.path);
                       ok.push_back(st.status.ok());
                       inputs.push_back(std::move(st.inputs));
                   },
                   2);

    ASSERT_EQ(seen, paths);
    EXPECT_EQ(ok, (std::vector<bool>{true, false, true}));

    // Streamed collection must be bit-identical to the serial engine.
    CollectorResult ref_a = collectInputs(a, config);
    CollectorResult ref_b = collectInputs(b, config);
    EXPECT_EQ(inputs[0].pcLatency, ref_a.pcLatency);
    EXPECT_EQ(inputs[0].avgMissLatency, ref_a.avgMissLatency);
    EXPECT_EQ(inputs[2].pcLatency, ref_b.pcLatency);
    EXPECT_EQ(inputs[2].avgMissLatency, ref_b.avgMissLatency);
}

TEST_F(TraceFormatFiles, StreamTraceSetContainsMidStreamCorruption)
{
    // Unlike the truncated file above, this .gmt has a pristine
    // header and section table; the damage is only discovered while
    // the payload streams. The failure must stay contained to its
    // file with the corruption class intact, and the healthy
    // neighbours must still evaluate.
    HardwareConfig config = smallConfig();
    KernelTrace a = sampleKernel("vectorAdd");
    KernelTrace b = sampleKernel("micro_stream");
    ASSERT_TRUE(writeTraceFile(path("a.gmt"), a, true).ok());
    ASSERT_TRUE(writeTraceFile(path("b.gmt"), b, true).ok());
    {
        std::string bytes = gmtToString(a);
        std::size_t at = entryOf(bytes, 7); // inst_pcs
        auto sum = peek<std::uint64_t>(bytes, at + 32);
        poke<std::uint64_t>(bytes, at + 32, sum ^ 1);
        resealTable(bytes);
        std::ofstream os(path("corrupt.gmt"), std::ios::binary);
        os.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size()));
    }

    std::vector<std::string> paths{path("a.gmt"), path("corrupt.gmt"),
                                   path("b.gmt")};
    std::vector<bool> ok;
    std::vector<Status> statuses;
    std::vector<CollectorResult> inputs;
    streamTraceSet(paths, config,
                   [&](StreamedTrace &&st) {
                       ok.push_back(st.status.ok());
                       statuses.push_back(st.status);
                       inputs.push_back(std::move(st.inputs));
                   },
                   2);

    ASSERT_EQ(ok, (std::vector<bool>{true, false, true}));
    EXPECT_EQ(statuses[1].code(), StatusCode::ChecksumMismatch)
        << statuses[1].toString();
    EXPECT_NE(statuses[1].message().find("inst_pcs"),
              std::string::npos)
        << statuses[1].toString();

    CollectorResult ref_a = collectInputs(a, config);
    CollectorResult ref_b = collectInputs(b, config);
    EXPECT_EQ(inputs[0].pcLatency, ref_a.pcLatency);
    EXPECT_EQ(inputs[0].avgMissLatency, ref_a.avgMissLatency);
    EXPECT_EQ(inputs[2].pcLatency, ref_b.pcLatency);
    EXPECT_EQ(inputs[2].avgMissLatency, ref_b.avgMissLatency);
}

TEST_F(TraceFormatFiles, TraceFileWorkloadWrapsFilesForTheHarness)
{
    KernelTrace kernel = sampleKernel();
    ASSERT_TRUE(writeTraceFile(path("w.gmt"), kernel, false).ok());

    Workload w = traceFileWorkload(path("w.gmt"));
    EXPECT_EQ(w.name, "file:" + path("w.gmt"));
    EXPECT_EQ(w.suite, "external");
    KernelTrace loaded = w.generate(smallConfig());
    EXPECT_EQ(traceToString(loaded), traceToString(kernel));

    Workload missing = traceFileWorkload(path("nope.gmt"));
    EXPECT_THROW(missing.generate(smallConfig()), StatusException);
}

TEST_F(TraceFormatFiles, ModelOutputsIdenticalAcrossFormatsAndJobs)
{
    HardwareConfig config = smallConfig();
    KernelTrace kernel = sampleKernel("srad_kernel1");
    ASSERT_TRUE(writeTraceFile(path("m.txt"), kernel, false).ok());
    ASSERT_TRUE(writeTraceFile(path("m.gmt"), kernel, true).ok());

    KernelTrace from_text =
        loadTraceFile(path("m.txt")).valueOrDie();
    KernelTrace from_gmt = loadTraceFile(path("m.gmt")).valueOrDie();

    GpuMechResult ref = runGpuMech(from_text, config);
    for (unsigned jobs : {1u, 4u}) {
        GpuMechProfiler profiler(from_gmt, config,
                                 RepSelection::Clustering, 2, jobs);
        GpuMechResult r = profiler.evaluate(
            SchedulingPolicy::RoundRobin);
        EXPECT_EQ(r.cpi, ref.cpi) << "jobs=" << jobs;
        EXPECT_EQ(r.ipc, ref.ipc) << "jobs=" << jobs;
        EXPECT_EQ(r.repWarpIndex, ref.repWarpIndex)
            << "jobs=" << jobs;
    }
}

} // namespace
} // namespace gpumech
