/**
 * @file
 * The `gpumech` command-line driver: model, simulate, and inspect
 * kernels without writing code.
 *
 * Subcommands:
 *   gpumech list                       list registered workloads
 *   gpumech model <kernel>             GPUMech prediction + CPI stack
 *   gpumech simulate <kernel>          detailed timing simulation
 *   gpumech compare <kernel>           all five models vs the oracle
 *   gpumech stack <kernel>             CPI stacks across warp counts
 *   gpumech dump-trace <kernel> <file> write the kernel trace to disk
 *   gpumech model-trace <file>         model a trace file
 *   gpumech suite <suite>              evaluate a whole suite with
 *                                      per-kernel fault isolation
 *
 * Exit codes (documented in README.md):
 *   0  full success
 *   1  total failure (bad arguments / config, or every kernel failed)
 *   2  partial success (suite completed but some kernels failed)
 *
 * Common hardware options (all subcommands):
 *   --warps N        warps per core           (default 32)
 *   --cores N        number of cores          (default 16)
 *   --mshrs N        L1 MSHR entries          (default 32)
 *   --bw GBs         DRAM bandwidth in GB/s   (default 192)
 *   --sfu-lanes N    SFU lanes per core       (default 32)
 *   --policy rr|gto  scheduling policy        (default rr)
 *   --level mt|mshr|band                      (default band)
 *   --model-sfu      enable the SFU contention extension
 *   --jobs N         worker threads for suite/sweep evaluation
 *                    (default: GPUMECH_JOBS env var, else hardware
 *                    concurrency; results are identical at any count)
 *
 * Observability (all subcommands; model outputs are bit-identical
 * with or without these flags):
 *   --metrics            print a metrics summary table to stderr
 *   --metrics-json FILE  write the merged metrics registry as JSON
 *   --trace-out FILE     write per-kernel, per-stage spans as Chrome
 *                        trace-event JSON (open in Perfetto)
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>

#include "common/args.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "common/trace_span.hh"
#include "collector/input_collector.hh"
#include "harness/experiment.hh"
#include "timing/gpu_timing.hh"
#include "trace/gmt_format.hh"
#include "trace/trace_io.hh"

using namespace gpumech;

namespace
{

HardwareConfig
configFrom(const ArgParser &args)
{
    HardwareConfig config = HardwareConfig::baseline();
    config.warpsPerCore = args.getUint("warps", config.warpsPerCore);
    config.numCores = args.getUint("cores", config.numCores);
    config.numMshrs = args.getUint("mshrs", config.numMshrs);
    config.dramBandwidthGBs =
        args.getDouble("bw", config.dramBandwidthGBs);
    config.sfuLanes = args.getUint("sfu-lanes", config.sfuLanes);
    // Reject out-of-range values up front (exit 1) instead of letting
    // a nonsense configuration panic deep inside the model.
    config.validate().orDie();
    return config;
}

/** Owns the CLI-configured fault plan the IsolationOptions point at. */
struct CliIsolation
{
    FaultPlan plan;
    IsolationOptions options;
};

/**
 * Parse --kernel-timeout-ms and --inject. The --inject value is a
 * comma-separated list of kernel:site[:attempt[:stallMs]] specs
 * (sites: parse, collect, profile, cache) — the same deterministic
 * FaultPlan the tests use, exposed for reproducing failures by hand.
 */
void
isolationFrom(const ArgParser &args, CliIsolation &iso)
{
    iso.options.kernelTimeoutMs =
        args.getUint("kernel-timeout-ms", 0);
    std::string specs = args.get("inject", "");
    if (specs.empty())
        return;
    std::vector<std::string> items;
    std::string item;
    for (char c : specs + ",") {
        if (c == ',') {
            if (!item.empty())
                items.push_back(item);
            item.clear();
        } else {
            item += c;
        }
    }
    for (const std::string &spec : items) {
        std::vector<std::string> parts;
        std::string part;
        for (char c : spec + ":") {
            if (c == ':') {
                parts.push_back(part);
                part.clear();
            } else {
                part += c;
            }
        }
        if (parts.size() < 2 || parts.size() > 4 ||
            parts[0].empty()) {
            fatal(msg("bad --inject spec '", spec,
                      "' (use kernel:site[:attempt[:stallMs]])"));
        }
        FaultInjection injection;
        injection.kernel = parts[0];
        injection.site =
            faultSiteFromString(parts[1]).valueOrDie();
        if (parts.size() > 2) {
            injection.attempt = static_cast<unsigned>(
                std::strtoul(parts[2].c_str(), nullptr, 10));
            if (injection.attempt == 0)
                fatal(msg("bad --inject attempt in '", spec,
                          "' (1-based)"));
        }
        if (parts.size() > 3) {
            injection.stallMs =
                std::strtoull(parts[3].c_str(), nullptr, 10);
        }
        iso.plan.add(std::move(injection));
    }
    iso.options.faultPlan = &iso.plan;
}

SchedulingPolicy
policyFrom(const ArgParser &args)
{
    std::string p = args.get("policy", "rr");
    if (p == "rr")
        return SchedulingPolicy::RoundRobin;
    if (p == "gto")
        return SchedulingPolicy::GreedyThenOldest;
    fatal(msg("unknown policy '", p, "' (use rr or gto)"));
}

ModelLevel
levelFrom(const ArgParser &args)
{
    std::string l = args.get("level", "band");
    if (l == "mt")
        return ModelLevel::MT;
    if (l == "mshr")
        return ModelLevel::MT_MSHR;
    if (l == "band")
        return ModelLevel::MT_MSHR_BAND;
    fatal(msg("unknown model level '", l, "' (use mt, mshr or band)"));
}

int
cmdList()
{
    Table t({"name", "suite", "ctrl-div", "mem-div", "description"});
    for (const auto &w : allWorkloads()) {
        t.addRow({w.name, w.suite, w.controlDivergent ? "yes" : "no",
                  w.memoryDivergent ? "yes" : "no", w.description});
    }
    t.print(std::cout);
    return 0;
}

void
printModelResult(const GpuMechResult &r, const HardwareConfig &config,
                 SchedulingPolicy policy)
{
    std::cout << "config: " << config.summary() << "\n";
    std::cout << "policy: " << toString(policy) << "\n";
    std::cout << "representative warp: " << r.repWarpIndex
              << " (single-warp IPC " << fmtDouble(r.repWarpPerf, 4)
              << ", " << r.repNumIntervals << " intervals)\n";
    std::cout << "CPI multithreading: "
              << fmtDouble(r.cpiMultithreading, 4) << "\n";
    std::cout << "CPI contention:     " << fmtDouble(r.cpiContention, 4)
              << "\n";
    std::cout << "CPI final:          " << fmtDouble(r.cpi, 4)
              << "  (IPC/core " << fmtDouble(r.ipc, 4) << ")\n";
    std::cout << "CPI stack:          " << r.stack.toLine() << "\n";
}

int
cmdModel(const ArgParser &args)
{
    std::string name = args.positional(1);
    if (name.empty())
        fatal("usage: gpumech model <kernel> [options]");
    HardwareConfig config = configFrom(args);
    KernelTrace kernel = workloadByName(name).generate(config);

    GpuMechOptions options;
    options.policy = policyFrom(args);
    options.level = levelFrom(args);
    options.modelSfu = args.has("model-sfu");
    GpuMechResult r = runGpuMech(kernel, config, options);
    if (args.has("json")) {
        JsonWriter json;
        json.field("kernel", kernel.name());
        json.field("policy", toString(options.policy));
        json.field("level", toString(options.level));
        json.field("warps", static_cast<std::uint64_t>(kernel.numWarps()));
        json.field("insts", kernel.totalInsts());
        json.field("cpi", r.cpi);
        json.field("ipc", r.ipc);
        json.field("cpi_multithreading", r.cpiMultithreading);
        json.field("cpi_contention", r.cpiContention);
        json.field("rep_warp", static_cast<std::uint64_t>(r.repWarpIndex));
        json.beginObject("stack");
        for (std::size_t i = 0; i < numStallTypes; ++i) {
            json.field(toString(static_cast<StallType>(i)),
                       r.stack.cpi[i]);
        }
        json.endObject();
        std::cout << json.finish() << "\n";
        return 0;
    }
    std::cout << "kernel: " << kernel.name() << " ("
              << kernel.numWarps() << " warps, " << kernel.totalInsts()
              << " insts)\n";
    printModelResult(r, config, options.policy);
    return 0;
}

int
cmdSimulate(const ArgParser &args)
{
    std::string name = args.positional(1);
    if (name.empty())
        fatal("usage: gpumech simulate <kernel> [options]");
    HardwareConfig config = configFrom(args);
    SchedulingPolicy policy = policyFrom(args);
    KernelTrace kernel = workloadByName(name).generate(config);

    GpuTiming sim(kernel, config, policy);
    TimingStats s = sim.run();
    if (args.has("json")) {
        JsonWriter json;
        json.field("kernel", kernel.name());
        json.field("policy", toString(policy));
        json.field("cycles", s.totalCycles);
        json.field("insts", s.totalInsts);
        json.field("cpi", s.cpi());
        json.field("simd_efficiency", s.simdEfficiency());
        json.beginObject("memory");
        json.field("l1_accesses", s.l1Accesses);
        json.field("l1_hits", s.l1Hits);
        json.field("l2_accesses", s.l2Accesses);
        json.field("l2_hits", s.l2Hits);
        json.field("dram_reads", s.dramReads);
        json.field("dram_writes", s.dramWrites);
        json.field("avg_dram_queue_delay", s.avgDramQueueDelay);
        json.field("mshr_peak",
                   static_cast<std::uint64_t>(s.mshrPeak));
        json.endObject();
        json.beginObject("stall_cpi");
        json.field("compute", s.computeStallCpi());
        json.field("mem", s.memStallCpi());
        json.field("mshr", s.mshrStallCpi());
        json.field("sfu", s.sfuStallCpi());
        json.endObject();
        std::cout << json.finish() << "\n";
        return 0;
    }
    std::cout << "kernel: " << kernel.name() << "\n";
    std::cout << "config: " << config.summary() << "\n";
    std::cout << "cycles: " << s.totalCycles << "\n";
    std::cout << "CPI (per core): " << fmtDouble(s.cpi(), 4) << "\n";
    std::cout << "L1 hit rate: "
              << fmtPercent(s.l1Accesses
                                ? static_cast<double>(s.l1Hits) /
                                      s.l1Accesses
                                : 0.0)
              << ", L2 hit rate: "
              << fmtPercent(s.l2Accesses
                                ? static_cast<double>(s.l2Hits) /
                                      s.l2Accesses
                                : 0.0)
              << "\n";
    std::cout << "DRAM reads/writes: " << s.dramReads << "/"
              << s.dramWrites << " (avg queue "
              << fmtDouble(s.avgDramQueueDelay, 1) << " cycles)\n";
    std::cout << "MSHR peak/allocs/merges: " << s.mshrPeak << "/"
              << s.mshrAllocs << "/" << s.mshrMerges << "\n";
    std::cout << "SIMD efficiency: " << fmtPercent(s.simdEfficiency())
              << "\n";
    std::cout << "measured stall CPI: compute "
              << fmtDouble(s.computeStallCpi(), 2) << ", mem "
              << fmtDouble(s.memStallCpi(), 2) << ", MSHR "
              << fmtDouble(s.mshrStallCpi(), 2) << ", SFU "
              << fmtDouble(s.sfuStallCpi(), 2) << "\n";
    return 0;
}

int
cmdSweep(const ArgParser &args)
{
    std::string name = args.positional(1);
    std::string param = args.get("param", "warps");
    std::string values = args.get("values", "8,16,24,32,48");
    if (name.empty())
        fatal("usage: gpumech sweep <kernel> --param "
              "warps|mshrs|bw|sfu-lanes [--values a,b,c] [--oracle]");

    std::vector<double> points;
    std::string tok;
    for (char c : values + ",") {
        if (c == ',') {
            if (!tok.empty())
                points.push_back(std::strtod(tok.c_str(), nullptr));
            tok.clear();
        } else {
            tok += c;
        }
    }
    if (points.empty())
        fatal("--values produced no sweep points");

    HardwareConfig base = configFrom(args);
    SchedulingPolicy policy = policyFrom(args);
    bool with_oracle = args.has("oracle");

    // Profile once at the base configuration; each point re-evaluates
    // (Section VI-D).
    KernelTrace kernel = workloadByName(name).generate(base);
    GpuMechProfiler profiler(kernel, base);

    std::vector<std::string> header{param, "model CPI", "model IPC"};
    if (with_oracle)
        header.insert(header.end(), {"oracle CPI", "error"});
    Table t(header);

    for (double v : points) {
        HardwareConfig config = base;
        if (param == "warps") {
            config.warpsPerCore = static_cast<std::uint32_t>(v);
        } else if (param == "mshrs") {
            config.numMshrs = static_cast<std::uint32_t>(v);
        } else if (param == "bw") {
            config.dramBandwidthGBs = v;
        } else if (param == "sfu-lanes") {
            config.sfuLanes = static_cast<std::uint32_t>(v);
        } else {
            fatal(msg("unknown sweep parameter '", param, "'"));
        }

        // Changing the warp count changes the trace itself
        // (occupancy), so regenerate and re-profile in that case.
        GpuMechResult r;
        KernelTrace swept_kernel("unused");
        if (param == "warps") {
            swept_kernel = workloadByName(name).generate(config);
            r = runGpuMech(swept_kernel, config,
                           GpuMechOptions{policy,
                                          ModelLevel::MT_MSHR_BAND,
                                          RepSelection::Clustering, 2,
                                          args.has("model-sfu")});
        } else {
            r = profiler.evaluateAt(config, policy,
                                    ModelLevel::MT_MSHR_BAND,
                                    args.has("model-sfu"));
        }

        std::vector<std::string> row{fmtDouble(v, 0),
                                     fmtDouble(r.cpi, 3),
                                     fmtDouble(r.ipc, 4)};
        if (with_oracle) {
            const KernelTrace &k =
                param == "warps" ? swept_kernel : kernel;
            GpuTiming sim(k, config, policy);
            double oracle_cpi = sim.run().cpi();
            row.push_back(fmtDouble(oracle_cpi, 3));
            row.push_back(
                fmtPercent(std::abs(r.ipc - 1.0 / oracle_cpi) /
                           (1.0 / oracle_cpi)));
        }
        t.addRow(std::move(row));
    }
    std::cout << "kernel: " << name << ", sweeping " << param << "\n\n";
    t.print(std::cout);
    return 0;
}

int
cmdCompare(const ArgParser &args)
{
    std::string name = args.positional(1);
    if (name.empty())
        fatal("usage: gpumech compare <kernel> [options]");
    HardwareConfig config = configFrom(args);
    SchedulingPolicy policy = policyFrom(args);
    KernelEvaluation eval =
        evaluateKernel(workloadByName(name), config, policy);

    std::cout << "kernel: " << name << ", oracle CPI "
              << fmtDouble(eval.oracleCpi, 3) << "\n\n";
    Table t({"model", "predicted IPC", "error"});
    for (ModelKind kind : allModels()) {
        t.addRow({toString(kind),
                  fmtDouble(eval.predictedIpc.at(kind), 4),
                  fmtPercent(eval.error(kind))});
    }
    t.print(std::cout);
    return 0;
}

int
cmdStack(const ArgParser &args)
{
    std::string name = args.positional(1);
    if (name.empty())
        fatal("usage: gpumech stack <kernel> [options]");
    SchedulingPolicy policy = policyFrom(args);

    Table t({"warps", "BASE", "DEP", "L1", "L2", "DRAM", "MSHR",
             "QUEUE", "SFU", "total CPI"});
    for (std::uint32_t warps : {8u, 16u, 24u, 32u, 48u}) {
        HardwareConfig config = configFrom(args);
        config.warpsPerCore = warps;
        KernelTrace kernel = workloadByName(name).generate(config);
        GpuMechOptions options;
        options.policy = policy;
        options.modelSfu = args.has("model-sfu");
        GpuMechResult r = runGpuMech(kernel, config, options);
        t.addRow({std::to_string(warps),
                  fmtDouble(r.stack[StallType::Base], 2),
                  fmtDouble(r.stack[StallType::Dep], 2),
                  fmtDouble(r.stack[StallType::L1], 2),
                  fmtDouble(r.stack[StallType::L2], 2),
                  fmtDouble(r.stack[StallType::Dram], 2),
                  fmtDouble(r.stack[StallType::Mshr], 2),
                  fmtDouble(r.stack[StallType::Queue], 2),
                  fmtDouble(r.stack[StallType::Sfu], 2),
                  fmtDouble(r.stack.total(), 2)});
    }
    std::cout << "kernel: " << name << "\n\n";
    t.print(std::cout);
    return 0;
}

int
cmdDumpTrace(const ArgParser &args)
{
    std::string name = args.positional(1);
    std::string path = args.positional(2);
    if (name.empty() || path.empty())
        fatal("usage: gpumech dump-trace <kernel> <file> "
              "[--varint] [options]");
    HardwareConfig config = configFrom(args);
    KernelTrace kernel = workloadByName(name).generate(config);
    writeTraceFile(path, kernel, args.has("varint")).orDie();
    inform(msg("wrote ", kernel.numWarps(), " warps (",
               kernel.totalInsts(), " insts) to ", path,
               hasGmtExtension(path) ? " (binary .gmt)" : " (text)"));
    return 0;
}

int
cmdPack(const ArgParser &args)
{
    std::string in = args.positional(1);
    std::string out = args.positional(2);
    if (in.empty() || out.empty())
        fatal("usage: gpumech pack <trace-in> <trace-out.gmt> "
              "[--varint]");
    Result<KernelTrace> loaded = loadTraceFile(in);
    if (!loaded.ok()) {
        std::cerr << "error: " << loaded.status().toString() << "\n";
        return 1;
    }
    KernelTrace kernel = std::move(loaded).value();
    std::ofstream os(out, std::ios::binary);
    if (!os)
        fatal(msg("cannot open ", out, " for writing"));
    GmtWriteOptions options;
    options.varintLines = args.has("varint");
    writeGmt(os, kernel, options);
    os.flush();
    if (!os)
        fatal(msg("write to ", out, " failed"));
    inform(msg("packed ", kernel.numWarps(), " warps (",
               kernel.totalInsts(), " insts, ", kernel.totalLines(),
               " line addresses) into ", out,
               options.varintLines ? " (varint line pool)" : ""));
    return 0;
}

int
cmdUnpack(const ArgParser &args)
{
    std::string in = args.positional(1);
    std::string out = args.positional(2);
    if (in.empty() || out.empty())
        fatal("usage: gpumech unpack <trace-in.gmt> <trace-out.txt>");
    Result<KernelTrace> loaded = loadTraceFile(in);
    if (!loaded.ok()) {
        std::cerr << "error: " << loaded.status().toString() << "\n";
        return 1;
    }
    KernelTrace kernel = std::move(loaded).value();
    std::ofstream os(out, std::ios::binary);
    if (!os)
        fatal(msg("cannot open ", out, " for writing"));
    writeTrace(os, kernel);
    os.flush();
    if (!os)
        fatal(msg("write to ", out, " failed"));
    inform(msg("unpacked ", kernel.numWarps(), " warps (",
               kernel.totalInsts(), " insts) into ", out));
    return 0;
}

int
cmdModelTrace(const ArgParser &args)
{
    if (args.numPositional() < 2)
        fatal("usage: gpumech model-trace <file...> [options]");
    HardwareConfig config = configFrom(args);
    GpuMechOptions options;
    options.policy = policyFrom(args);
    options.level = levelFrom(args);
    options.modelSfu = args.has("model-sfu");

    if (args.numPositional() == 2) {
        // Single file: full per-kernel report. Either format loads
        // (detected by content, not extension).
        std::string path = args.positional(1);
        Result<KernelTrace> loaded = loadTraceFile(path);
        if (!loaded.ok()) {
            std::cerr << "error: " << loaded.status().toString()
                      << "\n";
            return 1;
        }
        KernelTrace kernel = std::move(loaded).value();
        GpuMechResult r = runGpuMech(kernel, config, options);
        std::cout << "kernel: " << kernel.name() << " (from " << path
                  << ")\n";
        printModelResult(r, config, options.policy);
        return 0;
    }

    // Multiple files: stream the set through the collector with
    // decode/collect overlap (at most two traces resident), modeling
    // each kernel as it lands and containing per-file failures.
    std::vector<std::string> paths;
    for (std::size_t i = 1; i < args.numPositional(); ++i)
        paths.push_back(args.positional(i));
    unsigned jobs = args.getUint("jobs", 0);

    std::size_t failed = 0;
    Table t({"file", "kernel", "status", "CPI", "IPC/core"});
    Table failures({"file", "code", "detail"});
    streamTraceSet(
        paths, config,
        [&](StreamedTrace &&st) {
            if (!st.status.ok()) {
                ++failed;
                t.addRow({st.path, "-", "FAILED", "-", "-"});
                failures.addRow({st.path, toString(st.status.code()),
                                 st.status.message()});
                return;
            }
            GpuMechProfiler profiler(
                st.kernel, config, options.selection,
                options.numClusters, jobs,
                std::make_shared<const CollectorResult>(
                    std::move(st.inputs)));
            GpuMechResult r = profiler.evaluate(
                options.policy, options.level, options.modelSfu);
            t.addRow({st.path, st.kernel.name(), "ok",
                      fmtDouble(r.cpi, 3), fmtDouble(r.ipc, 4)});
        },
        jobs);
    t.print(std::cout);
    if (failed > 0) {
        std::cout << "\n" << failed << "/" << paths.size()
                  << " trace files failed:\n";
        failures.print(std::cout);
    }
    if (failed == paths.size())
        return 1;
    return failed > 0 ? 2 : 0;
}

int
cmdSuite(const ArgParser &args)
{
    // Accept both `gpumech suite stress` and `gpumech --suite stress`.
    std::string name = args.positional(1);
    if (name.empty())
        name = args.get("suite");
    if (name.empty())
        fatal("usage: gpumech suite <suite> [--predict] "
              "[--kernel-timeout-ms N] [--inject spec] [options]");
    std::vector<Workload> workloads =
        suiteByName(name).valueOrDie();
    HardwareConfig config = configFrom(args);
    SchedulingPolicy policy = policyFrom(args);
    CliIsolation iso;
    isolationFrom(args, iso);
    unsigned jobs = args.getUint("jobs", 0);

    std::size_t failed = 0;
    Table failures({"kernel", "code", "detail"});

    // Shared input cache, as a batch service would run: artifacts are
    // memoized across kernels and every fault site (including the
    // cache lookups) is live.
    InputCache cache;

    if (args.has("predict")) {
        // Model-only fast path (no oracle simulation).
        GpuMechOptions options;
        options.policy = policy;
        options.level = levelFrom(args);
        options.modelSfu = args.has("model-sfu");
        auto preds = predictSuite(workloads, config, options, jobs,
                                  &cache, iso.options);
        Table t({"kernel", "status", "CPI", "IPC/core"});
        for (const KernelPrediction &pred : preds) {
            if (pred.ok()) {
                t.addRow({pred.kernel, "ok",
                          fmtDouble(pred.result.cpi, 3),
                          fmtDouble(pred.result.ipc, 4)});
            } else {
                ++failed;
                t.addRow({pred.kernel, "FAILED", "-", "-"});
                failures.addRow({pred.kernel,
                                 toString(pred.status.code()),
                                 pred.status.message()});
            }
        }
        t.print(std::cout);
        if (failed > 0) {
            std::cout << "\n" << failed << "/" << preds.size()
                      << " kernels failed:\n";
            failures.print(std::cout);
        }
        if (failed == preds.size())
            return 1;
        return failed > 0 ? 2 : 0;
    }

    auto evals = evaluateSuite(workloads, config, policy, allModels(),
                               args.has("verbose"), jobs, &cache,
                               iso.options);
    Table t({"kernel", "status", "oracle CPI", "GPUMech IPC",
             "error"});
    for (const KernelEvaluation &eval : evals) {
        if (eval.ok()) {
            t.addRow({eval.kernel, "ok", fmtDouble(eval.oracleCpi, 3),
                      fmtDouble(eval.predictedIpc.at(
                                    ModelKind::MT_MSHR_BAND),
                                4),
                      fmtPercent(eval.error(ModelKind::MT_MSHR_BAND))});
        } else {
            ++failed;
            t.addRow({eval.kernel, "FAILED", "-", "-", "-"});
            failures.addRow({eval.kernel, toString(eval.status.code()),
                             eval.status.message()});
        }
    }
    t.print(std::cout);
    std::cout << "\nmean error over " << evals.size() - failed
              << " succeeding kernels: "
              << fmtPercent(averageError(evals,
                                         ModelKind::MT_MSHR_BAND))
              << "\n";
    if (failed > 0) {
        std::cout << "\n" << failed << "/" << evals.size()
                  << " kernels failed:\n";
        failures.print(std::cout);
    }
    if (failed == evals.size())
        return 1;
    return failed > 0 ? 2 : 0;
}

void
usage()
{
    std::cout <<
        "usage: gpumech <command> [options]\n"
        "commands:\n"
        "  list                     list registered workloads\n"
        "  model <kernel>           GPUMech prediction + CPI stack\n"
        "  simulate <kernel>        detailed timing simulation\n"
        "  compare <kernel>         all models vs the oracle\n"
        "  sweep <kernel>           sweep one hardware parameter\n"
        "                           (--param warps|mshrs|bw|sfu-lanes\n"
        "                            --values a,b,c [--oracle])\n"
        "  stack <kernel>           CPI stacks across warp counts\n"
        "  dump-trace <kernel> <f>  write the kernel trace to a file\n"
        "                           (binary .gmt when f ends in .gmt,\n"
        "                            text otherwise; --varint packs\n"
        "                            the .gmt line pool as deltas)\n"
        "  pack <in> <out.gmt>      convert a trace file to the binary\n"
        "                           columnar .gmt format [--varint]\n"
        "  unpack <in.gmt> <out>    convert a binary trace to text\n"
        "  model-trace <f...>       model trace files (text or .gmt,\n"
        "                           detected by content; several files\n"
        "                           stream with decode/collect overlap\n"
        "                           and per-file fault containment)\n"
        "  suite <suite>            evaluate every kernel of a suite\n"
        "                           with per-kernel fault isolation\n"
        "                           ([--predict] model-only)\n"
        "options: --warps N --cores N --mshrs N --bw GBs\n"
        "         --sfu-lanes N --policy rr|gto --level mt|mshr|band\n"
        "         --model-sfu --json (model/simulate)\n"
        "         --jobs N (threads; default GPUMECH_JOBS or hardware\n"
        "          concurrency)\n"
        "         --kernel-timeout-ms N (per-kernel deadline; 0 = off)\n"
        "         --inject kernel:site[:attempt[:stallMs]][,...]\n"
        "          (deterministic fault injection; sites: parse,\n"
        "           collect, profile, cache)\n"
        "         --metrics (summary table on stderr)\n"
        "         --metrics-json FILE (metrics registry as JSON)\n"
        "         --trace-out FILE (Chrome trace-event JSON of\n"
        "          per-kernel stage spans; open in ui.perfetto.dev)\n"
        "exit codes: 0 success, 1 total failure, 2 partial (suite)\n";
}

int
dispatch(const ArgParser &args)
{
    std::string cmd = args.positional(0);
    if (cmd == "list")
        return cmdList();
    if (cmd == "model")
        return cmdModel(args);
    if (cmd == "simulate")
        return cmdSimulate(args);
    if (cmd == "compare")
        return cmdCompare(args);
    if (cmd == "sweep")
        return cmdSweep(args);
    if (cmd == "stack")
        return cmdStack(args);
    if (cmd == "dump-trace")
        return cmdDumpTrace(args);
    if (cmd == "pack")
        return cmdPack(args);
    if (cmd == "unpack")
        return cmdUnpack(args);
    if (cmd == "model-trace")
        return cmdModelTrace(args);
    if (cmd == "suite")
        return cmdSuite(args);
    if (cmd.empty() && args.has("suite"))
        return cmdSuite(args);
    usage();
    return cmd.empty() ? 0 : 1;
}

/**
 * Write/print the observability reports the flags asked for. Runs
 * after dispatch() (success or failure) so a partially-failed suite
 * still leaves a metrics file behind for diagnosis.
 */
void
emitObservability(const ArgParser &args)
{
    std::string metrics_path = args.get("metrics-json");
    if (!metrics_path.empty()) {
        std::ofstream out(metrics_path);
        if (!out) {
            warn(msg("cannot open ", metrics_path, " for writing"));
        } else {
            out << metricsToJson() << "\n";
            inform(msg("wrote metrics to ", metrics_path));
        }
    }
    std::string trace_path = args.get("trace-out");
    if (!trace_path.empty()) {
        std::ofstream out(trace_path);
        if (!out) {
            warn(msg("cannot open ", trace_path, " for writing"));
        } else {
            TraceLog::writeChromeTrace(out);
            inform(msg("wrote Chrome trace to ", trace_path,
                       " (open in ui.perfetto.dev)"));
        }
    }
    if (args.has("metrics"))
        printMetricsSummary(std::cerr);
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    if (args.has("jobs"))
        setDefaultJobs(args.getUint("jobs", 0));
    if (args.has("metrics") || !args.get("metrics-json").empty())
        Metrics::enable(true);
    if (!args.get("trace-out").empty())
        TraceLog::enable(true);
    int code = 0;
    try {
        code = dispatch(args);
    } catch (const StatusException &e) {
        // Single-kernel commands have no containment boundary; render
        // the carried Status as a total failure.
        std::fprintf(stderr, "error: %s\n", e.what());
        code = 1;
    }
    // Emitted on the failure path too: a half-finished run's metrics
    // and spans are exactly what you want when diagnosing it.
    emitObservability(args);
    return code;
}
