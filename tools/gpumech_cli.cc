/**
 * @file
 * The `gpumech` command-line driver: model, simulate, and inspect
 * kernels without writing code.
 *
 * This is a thin front-end over the evaluation-service core
 * (src/service/): it parses argv into a service Request, hands it to
 * an EngineSession, prints the rendered report, and maps the response
 * onto the process exit code. The gpumech_serve daemon drives the same
 * engine from JSON lines, so CLI output and daemon output are the same
 * bytes (pinned by the cli_golden test).
 *
 * Subcommands:
 *   gpumech list                       list registered workloads
 *   gpumech model <kernel>             GPUMech prediction + CPI stack
 *   gpumech simulate <kernel>          detailed timing simulation
 *   gpumech compare <kernel>           all five models vs the oracle
 *   gpumech sweep <kernel>             sweep one hardware parameter
 *   gpumech tune <kernel>              guided design-space search
 *   gpumech stack <kernel>             CPI stacks across warp counts
 *   gpumech dump-trace <kernel> <file> write the kernel trace to disk
 *   gpumech pack <in> <out.gmt>        convert a trace to binary .gmt
 *   gpumech unpack <in.gmt> <out>      convert a binary trace to text
 *   gpumech model-trace <file...>      model trace files
 *   gpumech suite <suite>              evaluate a whole suite with
 *                                      per-kernel fault isolation
 *                                      (`--suite <suite>` is an
 *                                      equivalent spelling)
 *
 * Exit codes (documented in README.md):
 *   0  full success
 *   1  total failure (bad arguments / config, or every kernel failed)
 *   2  partial success (suite completed but some kernels failed)
 *
 * Common hardware options (all subcommands):
 *   --warps N        warps per core           (default 32)
 *   --cores N        number of cores          (default 16)
 *   --mshrs N        L1 MSHR entries          (default 32)
 *   --bw GBs         DRAM bandwidth in GB/s   (default 192)
 *   --sfu-lanes N    SFU lanes per core       (default 32)
 *   --policy rr|gto  scheduling policy        (default rr)
 *   --level mt|mshr|band                      (default band)
 *   --model-sfu      enable the SFU contention extension
 *   --jobs N         worker threads for suite/sweep evaluation, N >= 1
 *                    (default: GPUMECH_JOBS env var, else hardware
 *                    concurrency; results are identical at any count)
 *
 * Isolation (suite / compare / model-trace):
 *   --kernel-timeout-ms N  per-kernel deadline; 0 = off
 *   --inject kernel:site[:attempt[:stallMs]][,...]
 *                          deterministic fault injection (sites:
 *                          parse, collect, profile, cache)
 *
 * Observability (all subcommands; model outputs are bit-identical
 * with or without these flags):
 *   --metrics            print a metrics summary table to stderr
 *   --metrics-json FILE  write the merged metrics registry as JSON
 *   --trace-out FILE     write per-kernel, per-stage spans as Chrome
 *                        trace-event JSON (open in Perfetto)
 */

#include <cstdio>
#include <fstream>
#include <iostream>

#include "common/args.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/thread_pool.hh"
#include "common/trace_span.hh"
#include "service/engine_session.hh"

using namespace gpumech;

namespace
{

void
usage()
{
    std::cout <<
        "usage: gpumech <command> [options]\n"
        "commands:\n"
        "  list                     list registered workloads\n"
        "  model <kernel>           GPUMech prediction + CPI stack\n"
        "  simulate <kernel>        detailed timing simulation\n"
        "  compare <kernel>         all models vs the oracle\n"
        "  sweep <kernel>           sweep one hardware parameter\n"
        "                           (--param warps|mshrs|bw|sfu-lanes\n"
        "                            |l1-kb|l2-kb --values a,b,c\n"
        "                            [--sweep-mode rerun|mrc]\n"
        "                            [--mrc-rate r] [--oracle])\n"
        "  tune <kernel>            guided design-space search (JSON\n"
        "                           report: best point, Pareto\n"
        "                           frontier, CPI-stack explanations,\n"
        "                           bottleneck advisor)\n"
        "                           ([--dims d1,d2,...] over cores,\n"
        "                            warps, mshrs, bw, l1-kb, l2-kb,\n"
        "                            scheduler; [--<dim>-values a,b,c]\n"
        "                            [--objective cpi|cpi-cost]\n"
        "                            [--restarts n] [--seed s]\n"
        "                            [--max-cost c] [--max-cpi c]\n"
        "                            [--cost-weights dim=w,...]\n"
        "                            [--sweep-mode mrc|rerun]\n"
        "                            [--mrc-rate r] [--allow-approx])\n"
        "  stack <kernel>           CPI stacks across warp counts\n"
        "  dump-trace <kernel> <f>  write the kernel trace to a file\n"
        "                           (binary .gmt when f ends in .gmt,\n"
        "                            text otherwise; --varint packs\n"
        "                            the .gmt line pool as deltas)\n"
        "  pack <in> <out.gmt>      convert a trace file to the binary\n"
        "                           columnar .gmt format [--varint]\n"
        "  unpack <in.gmt> <out>    convert a binary trace to text\n"
        "  model-trace <f...>       model trace files (text or .gmt,\n"
        "                           detected by content; several files\n"
        "                           stream with decode/collect overlap\n"
        "                           and per-file fault containment)\n"
        "  suite <suite>            evaluate every kernel of a suite\n"
        "                           with per-kernel fault isolation\n"
        "                           ([--predict] model-only; --suite S\n"
        "                            is an equivalent spelling)\n"
        "options: --warps N --cores N --mshrs N --bw GBs\n"
        "         --sfu-lanes N --policy rr|gto --level mt|mshr|band\n"
        "         --model-sfu --json (model/simulate)\n"
        "         --jobs N (threads, N >= 1; default GPUMECH_JOBS or\n"
        "          hardware concurrency)\n"
        "         --kernel-timeout-ms N (per-kernel deadline; 0 = off)\n"
        "         --inject kernel:site[:attempt[:stallMs]][,...]\n"
        "          (deterministic fault injection; sites: parse,\n"
        "           collect, profile, cache)\n"
        "         --metrics (summary table on stderr)\n"
        "         --metrics-json FILE (metrics registry as JSON)\n"
        "         --trace-out FILE (Chrome trace-event JSON of\n"
        "          per-kernel stage spans; open in ui.perfetto.dev)\n"
        "exit codes: 0 success, 1 total failure, 2 partial (suite)\n";
}

/**
 * Write/print the observability reports the flags asked for. Runs
 * after the request (success or failure) so a partially-failed suite
 * still leaves a metrics file behind for diagnosis.
 */
void
emitObservability(const ArgParser &args)
{
    std::string metrics_path = args.get("metrics-json");
    if (!metrics_path.empty()) {
        std::ofstream out(metrics_path);
        if (!out) {
            warn(msg("cannot open ", metrics_path, " for writing"));
        } else {
            out << metricsToJson() << "\n";
            inform(msg("wrote metrics to ", metrics_path));
        }
    }
    std::string trace_path = args.get("trace-out");
    if (!trace_path.empty()) {
        std::ofstream out(trace_path);
        if (!out) {
            warn(msg("cannot open ", trace_path, " for writing"));
        } else {
            TraceLog::writeChromeTrace(out);
            inform(msg("wrote Chrome trace to ", trace_path,
                       " (open in ui.perfetto.dev)"));
        }
    }
    if (args.has("metrics"))
        printMetricsSummary(std::cerr);
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);

    std::string cmd = args.positional(0);
    if (cmd.empty() && args.has("suite"))
        cmd = "suite"; // `gpumech --suite stress` alias
    if (cmd.empty()) {
        usage();
        return 0;
    }
    if (!verbFromString(cmd).ok()) {
        usage();
        return 1;
    }

    // Workload-independent argument errors (malformed counts, bad
    // policy/level/inject specs, out-of-range configuration) surface
    // here, before any evaluation starts.
    Result<Request> parsed = requestFromArgs(args);
    if (!parsed.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     parsed.status().toString().c_str());
        return 1;
    }
    Request request = std::move(parsed).value();

    if (args.has("jobs"))
        setDefaultJobs(request.jobs);
    if (args.has("metrics") || !args.get("metrics-json").empty())
        Metrics::enable(true);
    if (!args.get("trace-out").empty())
        TraceLog::enable(true);

    EngineSession engine;
    Response response = engine.handle(request);
    std::cout << response.output;
    std::cout.flush();
    if (!response.ok() && response.output.empty()) {
        std::fprintf(stderr, "error: %s\n",
                     response.status.toString().c_str());
    }

    // Emitted on the failure path too: a half-finished run's metrics
    // and spans are exactly what you want when diagnosing it.
    emitObservability(args);
    return response.exitCode;
}
