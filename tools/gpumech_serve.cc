/**
 * @file
 * `gpumech_serve`: a batching evaluation daemon over the same engine
 * the CLI uses.
 *
 * Reads one JSON request per line (see README "Serving" and
 * service/request.hh for the schema), evaluates them on a shared
 * EngineSession — so the input cache stays warm across requests — and
 * writes one JSON response per line. By default it serves stdin to
 * stdout; --socket serves a Unix-domain stream socket instead,
 * accepting one connection at a time with the cache persisting across
 * connections.
 *
 * Usage:
 *   gpumech_serve [--socket PATH] [--max-queue N] [--max-batch N]
 *                 [--jobs N] [--kernel-timeout-ms N] [--no-output]
 *                 [--metrics]
 *
 *   --socket PATH          serve a Unix socket instead of stdin
 *   --max-queue N          admission bound: pending requests before
 *                          load-shedding (default 64)
 *   --max-batch N          requests evaluated concurrently per
 *                          dispatch round (default 4; 1 = serial)
 *   --jobs N               default worker threads per request, N >= 1
 *   --kernel-timeout-ms N  default per-kernel deadline (0 = off);
 *                          a request's "timeout_ms" overrides it
 *   --no-output            omit the rendered report ("output" field)
 *                          from responses
 *   --metrics              enable the metrics registry so requests
 *                          with "metrics":true get a per-request
 *                          registry delta
 *
 * Draining: EOF on stdin (or SIGTERM / SIGINT) stops intake; every
 * already-queued request is still answered before exit. Exit code 0
 * after a clean drain, 1 on setup/argument errors.
 */

#include <csignal>
#include <cstdio>
#include <iostream>

#include "common/args.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/thread_pool.hh"
#include "service/serve_loop.hh"

using namespace gpumech;

namespace
{

extern "C" void
onDrainSignal(int)
{
    requestServeDrain();
}

/**
 * Install SIGTERM/SIGINT handlers WITHOUT SA_RESTART: the blocking
 * stdin read / accept() must fail with EINTR so the serve loop
 * notices the drain request instead of staying parked in the kernel.
 */
void
installDrainHandlers()
{
    struct sigaction sa = {};
    sa.sa_handler = onDrainSignal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);

    ServeOptions options;
    EngineOptions engine_options;
    std::uint32_t max_queue = 64, max_batch = 4, jobs = 0;
    {
        auto queue = args.getPositiveUint("max-queue", 64);
        auto batch = args.getPositiveUint("max-batch", 4);
        auto j = args.getPositiveUint("jobs", 0);
        for (const auto *status :
             {&queue.status(), &batch.status(), &j.status()}) {
            if (!status->ok()) {
                std::fprintf(stderr, "error: %s\n",
                             status->toString().c_str());
                return 1;
            }
        }
        max_queue = queue.value();
        max_batch = batch.value();
        jobs = j.value();
    }
    options.maxQueue = max_queue;
    options.maxBatch = max_batch;
    options.includeOutput = !args.has("no-output");
    engine_options.jobs = jobs;
    engine_options.kernelTimeoutMs =
        args.getUint("kernel-timeout-ms", 0);

    if (jobs != 0)
        setDefaultJobs(jobs);
    if (args.has("metrics"))
        Metrics::enable(true);

    installDrainHandlers();

    EngineSession engine(engine_options);

    std::string socket_path = args.get("socket");
    ServeSummary summary;
    if (!socket_path.empty()) {
        inform(msg("serving on unix socket ", socket_path));
        Result<ServeSummary> served =
            serveUnixSocket(engine, socket_path, options);
        if (!served.ok()) {
            std::fprintf(stderr, "error: %s\n",
                         served.status().toString().c_str());
            return 1;
        }
        summary = served.value();
    } else {
        summary = serveLines(engine, std::cin, std::cout, options);
    }

    inform(msg("drained: ", summary.received, " received, ",
               summary.evaluated, " evaluated (", summary.failed,
               " failed), ", summary.shed, " shed, ",
               summary.malformed, " malformed"));
    return 0;
}
