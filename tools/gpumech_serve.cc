/**
 * @file
 * `gpumech_serve`: a batching evaluation daemon over the same engine
 * the CLI uses.
 *
 * Reads one JSON request per line (see README "Serving" and
 * service/request.hh for the schema), evaluates them on a shared
 * EngineSession — so the input cache stays warm across requests — and
 * writes one JSON response per line. By default it serves stdin to
 * stdout; --socket serves a Unix-domain stream socket instead, with
 * the connection supervisor (service/supervisor.hh) accepting many
 * clients concurrently: per-client in-flight quotas, retry_after_ms
 * back-off hints on shed responses, slow-reader/idle/oversized-line
 * eviction, and per-client response ordering.
 *
 * Usage:
 *   gpumech_serve [--socket PATH] [--max-queue N] [--max-batch N]
 *                 [--jobs N] [--kernel-timeout-ms N] [--no-output]
 *                 [--metrics] [--dispatch N] [--max-inflight N]
 *                 [--write-timeout-ms N] [--idle-timeout-ms N]
 *                 [--max-line-bytes N]
 *
 *   --socket PATH          serve a Unix socket instead of stdin
 *   --max-queue N          admission bound: pending requests before
 *                          load-shedding (default 64)
 *   --max-batch N          stdin mode: requests evaluated
 *                          concurrently per dispatch round
 *                          (default 4; 1 = serial)
 *   --jobs N               default worker threads per request, N >= 1
 *   --kernel-timeout-ms N  default per-kernel deadline (0 = off);
 *                          a request's "timeout_ms" overrides it
 *   --no-output            omit the rendered report ("output" field)
 *                          from responses
 *   --metrics              enable the metrics registry so requests
 *                          with "metrics":true get a per-request
 *                          registry delta
 *
 * Socket-mode supervisor knobs:
 *   --dispatch N           dispatcher threads (default 2)
 *   --max-inflight N       per-client quota of admitted-but-
 *                          unanswered requests (default 8)
 *   --write-timeout-ms N   disconnect a client that cannot absorb a
 *                          response this long (default 5000; 0 = off)
 *   --idle-timeout-ms N    disconnect a client idle this long
 *                          (default 0 = never)
 *   --max-line-bytes N     per-line byte cap; an oversized line ends
 *                          that client (default 1 MiB)
 *
 * Draining: EOF on stdin (or SIGTERM / SIGINT) stops intake; every
 * already-admitted request is still answered before exit. Exit code 0
 * after a clean drain, 1 on setup/argument errors.
 */

#include <csignal>
#include <cstdio>

#include "common/args.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/thread_pool.hh"
#include "service/serve_loop.hh"
#include "service/supervisor.hh"

using namespace gpumech;

namespace
{

extern "C" void
onDrainSignal(int)
{
    requestServeDrain();
}

/**
 * Install SIGTERM/SIGINT handlers WITHOUT SA_RESTART: a blocking
 * read/poll must fail with EINTR so the serve loop notices the drain
 * request instead of staying parked in the kernel. SIGPIPE is ignored
 * process-wide: every write already handles a closed peer by checking
 * the write result (net_io.hh), and a client vanishing mid-response
 * must never kill the daemon.
 */
void
installSignalHandlers()
{
    struct sigaction sa = {};
    sa.sa_handler = onDrainSignal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);
    signal(SIGPIPE, SIG_IGN);
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);

    ServeOptions options;
    EngineOptions engine_options;
    SupervisorOptions super;
    std::uint32_t max_queue = 64, max_batch = 4, jobs = 0;
    std::uint32_t dispatch = 2, max_inflight = 8;
    std::uint32_t max_line_bytes = 1 << 20;
    {
        auto queue = args.getPositiveUint("max-queue", 64);
        auto batch = args.getPositiveUint("max-batch", 4);
        auto j = args.getPositiveUint("jobs", 0);
        auto disp = args.getPositiveUint("dispatch", 2);
        auto inflight = args.getPositiveUint("max-inflight", 8);
        auto line_cap =
            args.getPositiveUint("max-line-bytes", 1 << 20);
        for (const auto *status :
             {&queue.status(), &batch.status(), &j.status(),
              &disp.status(), &inflight.status(),
              &line_cap.status()}) {
            if (!status->ok()) {
                std::fprintf(stderr, "error: %s\n",
                             status->toString().c_str());
                return 1;
            }
        }
        max_queue = queue.value();
        max_batch = batch.value();
        jobs = j.value();
        dispatch = disp.value();
        max_inflight = inflight.value();
        max_line_bytes = line_cap.value();
    }
    options.maxQueue = max_queue;
    options.maxBatch = max_batch;
    options.includeOutput = !args.has("no-output");
    engine_options.jobs = jobs;
    engine_options.kernelTimeoutMs =
        args.getUint("kernel-timeout-ms", 0);

    super.maxQueue = max_queue;
    super.dispatchers = dispatch;
    super.maxInflight = max_inflight;
    super.maxLineBytes = max_line_bytes;
    super.writeTimeoutMs = args.getUint("write-timeout-ms", 5000);
    super.idleTimeoutMs = args.getUint("idle-timeout-ms", 0);
    super.includeOutput = options.includeOutput;

    if (jobs != 0)
        setDefaultJobs(jobs);
    if (args.has("metrics"))
        Metrics::enable(true);

    installSignalHandlers();

    EngineSession engine(engine_options);

    std::string socket_path = args.get("socket");
    if (!socket_path.empty()) {
        inform(msg("serving on unix socket ", socket_path));
        Result<SupervisorSummary> served =
            serveSupervised(engine, socket_path, super);
        if (!served.ok()) {
            std::fprintf(stderr, "error: %s\n",
                         served.status().toString().c_str());
            return 1;
        }
        const SupervisorSummary &s = served.value();
        inform(msg("drained: ", s.connections, " connections, ",
                   s.received, " received, ", s.evaluated,
                   " evaluated (", s.failed, " failed), ", s.shed,
                   " shed, ", s.malformed, " malformed, ", s.dropped,
                   " dropped, ", s.slowDisconnects, " slow / ",
                   s.idleDisconnects, " idle / ", s.oversized,
                   " oversized evictions"));
        return 0;
    }

    ServeSummary summary = serveFd(engine, 0, 1, options);
    inform(msg("drained: ", summary.received, " received, ",
               summary.evaluated, " evaluated (", summary.failed,
               " failed), ", summary.shed, " shed, ",
               summary.malformed, " malformed"));
    return 0;
}
