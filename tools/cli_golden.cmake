# Compare gpumech CLI stdout byte-for-byte against the checked-in
# golden transcripts in tests/golden/. Invoked by the cli_golden
# ctest entry (see CMakeLists.txt):
#
#   cmake -DGPUMECH_BIN=<path> -DGOLDEN_DIR=<tests/golden>
#         -DWORK_DIR=<dir> -P cli_golden.cmake
#
# The goldens were captured from the pre-refactor monolithic CLI, so
# this test pins the engine/front-end split: every subcommand routed
# through EngineSession must stay bit-identical to the original
# in-process pipeline, including table layout, JSON field order, and
# rounding.

if(NOT DEFINED GPUMECH_BIN OR NOT DEFINED GOLDEN_DIR
   OR NOT DEFINED WORK_DIR)
    message(FATAL_ERROR
        "GPUMECH_BIN, GOLDEN_DIR and WORK_DIR are required")
endif()

file(MAKE_DIRECTORY ${WORK_DIR})

# "name|space-separated args" — one entry per golden file <name>.txt.
set(cases
    "list|list"
    "model_kmeans|model kmeans_invert_mapping"
    "model_srad_json|model srad_kernel1 --json --warps 16 --mshrs 64 --policy gto --level mshr"
    "stack_micro|stack micro_stream --warps 8 --cores 2"
    "suite_micro_predict|suite micro --predict --warps 4 --cores 2"
    "sweep_micro_mshrs|sweep micro_stream --param mshrs --values 8,16 --warps 4 --cores 2"
    "simulate_micro_json|simulate micro_stream --warps 4 --cores 2 --json")

foreach(case ${cases})
    string(FIND "${case}" "|" sep)
    string(SUBSTRING "${case}" 0 ${sep} name)
    math(EXPR after "${sep} + 1")
    string(SUBSTRING "${case}" ${after} -1 shown)
    string(REPLACE " " ";" args "${shown}")

    set(golden ${GOLDEN_DIR}/${name}.txt)
    if(NOT EXISTS ${golden})
        message(FATAL_ERROR "golden file missing: ${golden}")
    endif()

    set(actual ${WORK_DIR}/${name}.txt)
    execute_process(
        COMMAND ${GPUMECH_BIN} ${args}
        RESULT_VARIABLE run_code
        OUTPUT_FILE ${actual}
        ERROR_VARIABLE run_errors)
    if(NOT run_code EQUAL 0)
        message(FATAL_ERROR
            "gpumech ${shown} exited ${run_code}\n"
            "stderr:\n${run_errors}")
    endif()

    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files ${golden} ${actual}
        RESULT_VARIABLE diff_code)
    if(NOT diff_code EQUAL 0)
        file(READ ${golden} want)
        file(READ ${actual} got)
        message(FATAL_ERROR
            "gpumech ${shown} diverged from ${golden}\n"
            "---- expected ----\n${want}\n"
            "---- actual ----\n${got}")
    endif()
endforeach()
