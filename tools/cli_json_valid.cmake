# Run the gpumech CLI with the observability flags and validate that
# both emitted files (--metrics-json and --trace-out) are well-formed
# JSON, using `python3 -m json.tool` as an independent parser. Invoked
# by the cli_observability_json ctest entry (see CMakeLists.txt):
#
#   cmake -DGPUMECH_BIN=<path> -DPYTHON3=<path> -DWORK_DIR=<dir>
#         -P cli_json_valid.cmake
#
# This pins the contract that the hand-rolled Chrome trace writer and
# the JsonWriter-based metrics report both produce output a strict
# parser accepts (escaping, non-finite handling, nesting).

if(NOT DEFINED GPUMECH_BIN OR NOT DEFINED PYTHON3 OR NOT DEFINED WORK_DIR)
    message(FATAL_ERROR "GPUMECH_BIN, PYTHON3 and WORK_DIR are required")
endif()

file(MAKE_DIRECTORY ${WORK_DIR})
set(metrics_json ${WORK_DIR}/metrics.json)
set(trace_json ${WORK_DIR}/trace.json)

execute_process(
    COMMAND ${GPUMECH_BIN} suite micro --warps 4 --cores 2 --predict
            --jobs 2 --metrics
            --metrics-json ${metrics_json} --trace-out ${trace_json}
    RESULT_VARIABLE run_code
    OUTPUT_VARIABLE run_output
    ERROR_VARIABLE run_errors)
if(NOT run_code EQUAL 0)
    message(FATAL_ERROR
        "gpumech suite micro exited ${run_code}\nstdout:\n"
        "${run_output}\nstderr:\n${run_errors}")
endif()

# The --metrics summary must have reached stderr.
if(NOT run_errors MATCHES "metric")
    message(FATAL_ERROR
        "--metrics produced no summary on stderr:\n${run_errors}")
endif()

foreach(emitted ${metrics_json} ${trace_json})
    if(NOT EXISTS ${emitted})
        message(FATAL_ERROR "expected output file missing: ${emitted}")
    endif()
    execute_process(
        COMMAND ${PYTHON3} -m json.tool ${emitted}
        RESULT_VARIABLE json_code
        OUTPUT_QUIET
        ERROR_VARIABLE json_errors)
    if(NOT json_code EQUAL 0)
        message(FATAL_ERROR
            "${emitted} is not valid JSON:\n${json_errors}")
    endif()
endforeach()
