# Run the gpumech CLI and compare its exit code against an expected
# value. Invoked by the cli_exit_* ctest entries (see CMakeLists.txt):
#
#   cmake -DGPUMECH_BIN=<path> "-DGPUMECH_ARGS=a;b;c"
#         -DEXPECTED_CODE=N -P cli_exit_code.cmake
#
# The exit-code contract this pins: 0 full success, 2 partial success
# (contained per-kernel failures), 1 total failure (bad arguments, bad
# config, or every kernel failed).

if(NOT DEFINED GPUMECH_BIN OR NOT DEFINED EXPECTED_CODE)
    message(FATAL_ERROR "GPUMECH_BIN and EXPECTED_CODE are required")
endif()

execute_process(
    COMMAND ${GPUMECH_BIN} ${GPUMECH_ARGS}
    RESULT_VARIABLE actual_code
    OUTPUT_VARIABLE run_output
    ERROR_VARIABLE run_errors)

if(NOT actual_code EQUAL EXPECTED_CODE)
    message(FATAL_ERROR
        "gpumech ${GPUMECH_ARGS} exited ${actual_code}, "
        "expected ${EXPECTED_CODE}\nstdout:\n${run_output}\n"
        "stderr:\n${run_errors}")
endif()
