# End-to-end pack/unpack round-trip through the gpumech CLI. Invoked
# by the cli_pack_roundtrip ctest entry (see CMakeLists.txt):
#
#   cmake -DGPUMECH_BIN=<path> -DWORK_DIR=<dir> -P cli_pack_roundtrip.cmake
#
# Pins the tentpole round-trip contract at the binary boundary:
#   dump-trace (text) -> pack -> unpack must reproduce the original
#   text file byte-for-byte, for both the raw and varint encodings,
# and the packed file must itself be a pack fixpoint (unpack -> pack
# reproduces the same .gmt bytes).

if(NOT DEFINED GPUMECH_BIN OR NOT DEFINED WORK_DIR)
    message(FATAL_ERROR "GPUMECH_BIN and WORK_DIR are required")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

function(run_cli)
    execute_process(
        COMMAND ${GPUMECH_BIN} ${ARGN}
        RESULT_VARIABLE code
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT code EQUAL 0)
        message(FATAL_ERROR "gpumech ${ARGN} exited ${code}\n"
                            "stdout:\n${out}\nstderr:\n${err}")
    endif()
endfunction()

run_cli(dump-trace vectorAdd ${WORK_DIR}/ref.txt --warps 8 --cores 2)

foreach(mode raw varint)
    set(flags "")
    if(mode STREQUAL varint)
        set(flags --varint)
    endif()
    run_cli(pack ${WORK_DIR}/ref.txt ${WORK_DIR}/${mode}.gmt ${flags})
    run_cli(unpack ${WORK_DIR}/${mode}.gmt ${WORK_DIR}/${mode}.txt)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORK_DIR}/ref.txt ${WORK_DIR}/${mode}.txt
        RESULT_VARIABLE same)
    if(NOT same EQUAL 0)
        message(FATAL_ERROR
            "${mode}: unpack(pack(ref.txt)) differs from ref.txt")
    endif()
    # Pack fixpoint: repacking the packed file reproduces its bytes.
    run_cli(pack ${WORK_DIR}/${mode}.gmt ${WORK_DIR}/${mode}2.gmt ${flags})
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORK_DIR}/${mode}.gmt ${WORK_DIR}/${mode}2.gmt
        RESULT_VARIABLE same)
    if(NOT same EQUAL 0)
        message(FATAL_ERROR "${mode}: pack is not a fixpoint")
    endif()
endforeach()

file(REMOVE_RECURSE ${WORK_DIR})
