#!/usr/bin/env python3
"""Chaos soak against the gpumech_serve connection supervisor.

Launches the daemon in socket mode (binary path in argv[1]) and drives
it with N concurrent clients, each following a seeded random script of
valid requests (ping / model / health), garbage lines, blank
keep-alives, and shed-provoking bursts, while designated misbehaving
clients inject oversized lines (eviction expected) and abrupt
mid-stream disconnects (server must shrug). The harness then performs
a SIGTERM drain with a request still in flight.

Invariants checked (any violation exits non-zero):

  * zero lost responses: every non-blank line a well-behaved client
    sends gets exactly one response (evaluated, error, or shed);
  * zero duplicated or misrouted responses: ids are unique per client
    and every received id belongs to the receiving client's own set;
  * per-client ordering: "seq" is strictly increasing per connection;
  * every response line parses as strict JSON;
  * the oversized client receives an explanatory error, then EOF;
  * the drain answers the in-flight request before the socket closes;
  * the daemon exits 0 with a drain summary after SIGTERM.

Usage: serve_soak.py <gpumech_serve> [--clients N] [--requests N]
                     [--seed S] [--keep-going]
"""

import argparse
import json
import os
import random
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

MAX_LINE_BYTES = 4096
WINDOW = 4  # client-side outstanding-request cap (self backpressure)


def fail(why, *context):
    print("FAIL:", why, file=sys.stderr)
    for item in context:
        print("  ", item, file=sys.stderr)
    sys.exit(1)


class LineClient:
    """Blocking Unix-socket client with line-buffered reads."""

    def __init__(self, path, timeout=60.0):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.settimeout(timeout)
        self.sock.connect(path)
        self.buf = b""

    def send_line(self, line):
        self.sock.sendall(line.encode() + b"\n")

    def send_raw(self, data):
        self.sock.sendall(data)

    def read_line(self):
        """Next line, or None on EOF."""
        while b"\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                return None
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return line.decode()

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass


class ClientResult:
    def __init__(self, name):
        self.name = name
        self.errors = []
        self.responses = 0

    def check(self, ok, why, *context):
        if not ok:
            self.errors.append(
                "%s: %s %s" % (self.name, why,
                               " | ".join(str(c) for c in context)))


def valid_request(rng, rid):
    roll = rng.random()
    if roll < 0.70:
        return {"cmd": "ping", "id": rid}
    if roll < 0.90:
        return {"cmd": "model", "kernel": "micro_stream",
                "config": {"warps": 4, "cores": 2}, "id": rid}
    return {"cmd": "health", "id": rid}


class Outstanding:
    """Responses still owed to one client: a set of correlation ids
    plus a count of id-less ones (garbage lines earn an error response
    whose id could not be salvaged)."""

    def __init__(self):
        self.ids = set()
        self.noid = 0

    def __len__(self):
        return len(self.ids) + self.noid


def drain_responses(client, result, pending, last_seq, want=0):
    """Read responses until `pending` drops to `want` (or EOF)."""
    while len(pending) > want:
        line = client.read_line()
        result.check(line is not None,
                     "EOF with %d responses outstanding" % len(pending),
                     sorted(pending.ids), pending.noid)
        if line is None:
            return last_seq
        try:
            resp = json.loads(line)
        except json.JSONDecodeError as exc:
            result.check(False, "unparseable response line",
                         line, exc)
            continue
        result.responses += 1
        seq = resp.get("seq")
        result.check(isinstance(seq, (int, float)) and seq > last_seq,
                     "seq not strictly increasing", last_seq, resp)
        if isinstance(seq, (int, float)):
            last_seq = seq
        if "id" in resp:
            rid = resp["id"]
            result.check(rid in pending.ids,
                         "response id not mine or duplicated", resp)
            pending.ids.discard(rid)
        else:
            result.check(pending.noid > 0,
                         "unexpected id-less response", resp)
            pending.noid = max(0, pending.noid - 1)
    return last_seq


def well_behaved(path, index, requests, seed, result):
    rng = random.Random(seed * 1000 + index)
    client = LineClient(path)
    pending = Outstanding()
    last_seq = 0.0
    sent = 0
    while sent < requests:
        roll = rng.random()
        rid = "c%d-%d" % (index, sent)
        if roll < 0.10:
            client.send_line("")  # blank keep-alive: no response
        elif roll < 0.20:
            sent += 1
            pending.noid += 1  # garbage earns an id-less error
            client.send_line("garbage %s {{{" % rid)
        elif roll < 0.30:
            # Well-formed JSON that fails request validation: the
            # error response must still echo the salvaged id.
            sent += 1
            pending.ids.add(rid)
            client.send_line(json.dumps({"cmd": "model", "id": rid}))
        else:
            sent += 1
            pending.ids.add(rid)
            client.send_line(json.dumps(valid_request(rng, rid)))
        last_seq = drain_responses(client, result, pending, last_seq,
                                   want=WINDOW)
    last_seq = drain_responses(client, result, pending, last_seq)
    client.close()


def oversized_attacker(path, index, result):
    client = LineClient(path)
    pending = Outstanding()
    pending.ids.add("c%d-0" % index)
    client.send_line(json.dumps({"cmd": "ping",
                                 "id": "c%d-0" % index}))
    drain_responses(client, result, pending, last_seq=0.0)
    # Blow the byte cap mid-line: expect one error, then eviction.
    client.send_raw(b"x" * (MAX_LINE_BYTES * 2))
    line = client.read_line()
    result.check(line is not None, "no eviction notice before EOF")
    if line is not None:
        try:
            resp = json.loads(line)
            result.check(not resp.get("ok", True),
                         "oversized line should answer an error", resp)
            result.check("byte cap" in resp.get("error", ""),
                         "eviction error should name the byte cap",
                         resp)
        except json.JSONDecodeError as exc:
            result.check(False, "unparseable eviction notice",
                         line, exc)
    result.check(client.read_line() is None,
                 "evicted client should see EOF")
    client.close()


def disconnector(path, index, requests, seed, result):
    """Sends work, then vanishes mid-line without reading it all."""
    rng = random.Random(seed * 1000 + index)
    client = LineClient(path)
    for i in range(max(2, requests // 4)):
        client.send_line(json.dumps(
            valid_request(rng, "c%d-%d" % (index, i))))
    # Read one response (maybe), then cut the connection mid-JSON.
    client.read_line()
    client.send_raw(b'{"cmd":"mo')
    client.close()


def wait_for_socket(path, proc, deadline=30.0):
    end = time.time() + deadline
    while time.time() < end:
        if proc.poll() is not None:
            fail("daemon died before binding", proc.returncode)
        if os.path.exists(path):
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                probe.connect(path)
                probe.close()
                return
            except OSError:
                pass
        time.sleep(0.05)
    fail("socket %s never became connectable" % path)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("serve_bin")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=16)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()
    if args.clients < 4:
        fail("need at least 4 clients (roles: attacker, "
             "disconnector, well-behaved)")

    sock_dir = tempfile.mkdtemp(prefix="gm_soak_")
    sock_path = os.path.join(sock_dir, "serve.sock")
    proc = subprocess.Popen(
        [args.serve_bin, "--socket", sock_path, "--dispatch", "2",
         "--max-inflight", "8", "--max-queue", "32", "--no-output",
         "--max-line-bytes", str(MAX_LINE_BYTES)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    try:
        wait_for_socket(sock_path, proc)

        results = []
        threads = []
        for i in range(args.clients):
            result = ClientResult("client%d" % i)
            results.append(result)
            if i == 0:
                target, targs = oversized_attacker, (sock_path, i,
                                                     result)
            elif i % 4 == 3:
                target, targs = disconnector, (sock_path, i,
                                               args.requests,
                                               args.seed, result)
            else:
                target, targs = well_behaved, (sock_path, i,
                                               args.requests,
                                               args.seed, result)

            def run(target=target, targs=targs, result=result):
                try:
                    target(*targs)
                except Exception as exc:  # noqa: BLE001
                    result.check(False, "client raised", repr(exc))

            thread = threading.Thread(target=run)
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join(timeout=120)
            if thread.is_alive():
                fail("client thread wedged")

        # Drain under load: park a slow request, SIGTERM, and the
        # response must still arrive before the socket closes.
        witness = LineClient(sock_path)
        witness.send_line(json.dumps({
            "cmd": "suite", "suite": "micro", "predict": True,
            "config": {"warps": 4, "cores": 2},
            "inject": "micro_pointer_chase:collect:1:300",
            "id": "drain-witness"}))
        time.sleep(0.2)  # let the reader admit it
        proc.send_signal(signal.SIGTERM)
        line = witness.read_line()
        if line is None:
            fail("drain dropped the in-flight request")
        resp = json.loads(line)
        if resp.get("id") != "drain-witness":
            fail("drain response misrouted", resp)
        if witness.read_line() is not None:
            fail("expected EOF after the drain flushed")
        witness.close()

        out, err = proc.communicate(timeout=60)
        if proc.returncode != 0:
            fail("daemon exited %d" % proc.returncode, err)
        if "drained" not in err:
            fail("no drain summary on stderr", err)

        errors = [e for r in results for e in r.errors]
        if errors:
            fail("%d invariant violations" % len(errors), *errors[:20])

        total = sum(r.responses for r in results)
        print("serve soak OK: %d clients, %d responses validated, "
              "clean drain (%s)"
              % (args.clients, total,
                 err.strip().splitlines()[-1] if err else ""))
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        try:
            os.unlink(sock_path)
        except OSError:
            pass
        try:
            os.rmdir(sock_dir)
        except OSError:
            pass


if __name__ == "__main__":
    main()
