# Run `gpumech tune` on a small declared space and validate that the
# emitted report is well-formed JSON, using `python3 -m json.tool` as
# an independent parser. Invoked by the cli_tune_smoke ctest entry
# (see CMakeLists.txt):
#
#   cmake -DGPUMECH_BIN=<path> -DPYTHON3=<path> -DWORK_DIR=<dir>
#         -P cli_tune_smoke.cmake
#
# Beyond parsing, this pins the report's declared shape: a baseline,
# a best point, a non-empty Pareto frontier, and a bottleneck advisor
# must all be present, and the run must exit 0.

if(NOT DEFINED GPUMECH_BIN OR NOT DEFINED PYTHON3 OR NOT DEFINED WORK_DIR)
    message(FATAL_ERROR "GPUMECH_BIN, PYTHON3 and WORK_DIR are required")
endif()

file(MAKE_DIRECTORY ${WORK_DIR})
set(report_json ${WORK_DIR}/tune_report.json)

execute_process(
    COMMAND ${GPUMECH_BIN} tune vectorAdd --warps 4 --cores 2
            --dims mshrs,bw --mshrs-values 16,32,64
            --bw-values 96,192 --restarts 2 --seed 1 --jobs 2
    RESULT_VARIABLE run_code
    OUTPUT_FILE ${report_json}
    ERROR_VARIABLE run_errors)
if(NOT run_code EQUAL 0)
    message(FATAL_ERROR
        "gpumech tune vectorAdd exited ${run_code}\nstderr:\n"
        "${run_errors}")
endif()

execute_process(
    COMMAND ${PYTHON3} -m json.tool ${report_json}
    RESULT_VARIABLE json_code
    OUTPUT_QUIET
    ERROR_VARIABLE json_errors)
if(NOT json_code EQUAL 0)
    message(FATAL_ERROR
        "${report_json} is not valid JSON:\n${json_errors}")
endif()

file(READ ${report_json} report)
foreach(required "\"baseline\"" "\"best\"" "\"frontier\"" "\"advisor\""
                 "\"explanation\"" "\"space_size\"" "\"evaluations\"")
    if(NOT report MATCHES "${required}")
        message(FATAL_ERROR
            "tune report is missing ${required}:\n${report}")
    endif()
endforeach()
