/**
 * @file
 * Time-budgeted fuzz smoke test for the trace loaders (text parser
 * and the binary .gmt decoder).
 *
 * Starts from a corpus of valid serialized traces (text and packed
 * .gmt, raw and varint), applies random mutations — byte/line edits
 * for text, bit flips / truncations / span rewrites for .gmt — and
 * feeds the result to the matching parser. The contract under fuzz:
 *
 *  - the parsers never crash, never throw past the Result boundary,
 *    and never allocate absurdly (count caps reject huge headers and
 *    section tables before any reserve);
 *  - every rejection carries a non-Ok StatusCode and a non-empty
 *    message;
 *  - every accepted input round-trips: serialize + re-parse succeeds
 *    and reproduces the same bytes (a fixpoint in its own format).
 *
 * Deterministic for a given --seed. The default --ms budget is small
 * enough for ctest; CI runs a longer budget (see ci.yml).
 *
 * Usage: trace_fuzz [--ms N] [--seed N] [--format text|gmt|both]
 *                   [--verbose]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/args.hh"
#include "common/logging.hh"
#include "common/config.hh"
#include "common/rng.hh"
#include "trace/gmt_format.hh"
#include "trace/trace_io.hh"
#include "workloads/workload.hh"

namespace gpumech
{
namespace
{

/** Small valid traces to mutate. */
std::vector<std::string>
buildCorpus()
{
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 1;
    config.warpsPerCore = 2;
    std::vector<std::string> corpus;
    for (const char *name :
         {"vectorAdd", "micro_stream", "micro_pointer_chase"}) {
        const Workload *w = findWorkload(name);
        if (w != nullptr)
            corpus.push_back(traceToString(w->generate(config)));
    }
    // Minimal hand-rolled trace: exercises the header/trailer paths
    // with almost no payload to mutate around.
    corpus.push_back("kernel tiny\nstatic 1\n0 ialu -\n"
                     "warps 1\nwarp 0 0 1\n0\nend\n");
    return corpus;
}

std::string
mutate(const std::string &base, Rng &rng)
{
    std::string text = base;
    unsigned rounds = 1 + rng.nextBelow(4);
    for (unsigned r = 0; r < rounds; ++r) {
        if (text.empty())
            break;
        switch (rng.nextBelow(6)) {
          case 0: // flip one byte to random printable ASCII
            text[rng.nextBelow(text.size())] =
                static_cast<char>(' ' + rng.nextBelow(95));
            break;
          case 1: // truncate at a random point
            text.resize(rng.nextBelow(text.size() + 1));
            break;
          case 2: { // insert a huge or negative number
            const char *payloads[] = {"99999999999999999999",
                                      "1099511627776", "-7", "0"};
            text.insert(rng.nextBelow(text.size()),
                        payloads[rng.nextBelow(4)]);
            break;
          }
          case 3: { // duplicate a random line
            std::size_t start = text.rfind('\n', rng.nextBelow(text.size()));
            start = (start == std::string::npos) ? 0 : start + 1;
            std::size_t end = text.find('\n', start);
            if (end == std::string::npos)
                end = text.size();
            text.insert(start, text.substr(start, end - start + 1));
            break;
          }
          case 4: { // delete a random span
            std::size_t at = rng.nextBelow(text.size());
            text.erase(at, 1 + rng.nextBelow(16));
            break;
          }
          case 5: { // splice in a keyword where it does not belong
            const char *keywords[] = {"kernel x\n", "warps ",
                                      "end\n", "static "};
            text.insert(rng.nextBelow(text.size()),
                        keywords[rng.nextBelow(4)]);
            break;
          }
        }
    }
    return text;
}

/** Pure-noise input, no valid structure at all. */
std::string
garbage(Rng &rng)
{
    std::string text(rng.nextBelow(256), '\0');
    for (char &c : text)
        c = static_cast<char>(1 + rng.nextBelow(126));
    return text;
}

/** Packed .gmt images of the text corpus, raw and varint encoded. */
std::vector<std::string>
buildGmtCorpus(const std::vector<std::string> &text_corpus)
{
    std::vector<std::string> corpus;
    for (const std::string &text : text_corpus) {
        Result<KernelTrace> parsed = parseTraceString(text);
        if (!parsed.ok())
            continue;
        GmtWriteOptions raw, varint;
        varint.varintLines = true;
        corpus.push_back(gmtToString(parsed.value(), raw));
        corpus.push_back(gmtToString(parsed.value(), varint));
    }
    return corpus;
}

/** Binary mutations: bit flips, truncations, span rewrites. */
std::string
mutateGmt(const std::string &base, Rng &rng)
{
    std::string bytes = base;
    unsigned rounds = 1 + rng.nextBelow(4);
    for (unsigned r = 0; r < rounds; ++r) {
        if (bytes.empty())
            break;
        switch (rng.nextBelow(6)) {
          case 0: // flip one bit anywhere
            bytes[rng.nextBelow(bytes.size())] ^=
                static_cast<char>(1 << rng.nextBelow(8));
            break;
          case 1: // flip one bit in the header/table region
            bytes[rng.nextBelow(std::min<std::size_t>(bytes.size(),
                                                      512))] ^=
                static_cast<char>(1 << rng.nextBelow(8));
            break;
          case 2: // truncate at a random point
            bytes.resize(rng.nextBelow(bytes.size() + 1));
            break;
          case 3: { // overwrite a short span with random bytes
            std::size_t at = rng.nextBelow(bytes.size());
            std::size_t n =
                std::min(bytes.size() - at,
                         std::size_t(1) + rng.nextBelow(16));
            for (std::size_t i = 0; i < n; ++i)
                bytes[at + i] =
                    static_cast<char>(rng.nextBelow(256));
            break;
          }
          case 4: { // zero a short span (fakes padding / kills magic)
            std::size_t at = rng.nextBelow(bytes.size());
            std::size_t n =
                std::min(bytes.size() - at,
                         std::size_t(1) + rng.nextBelow(16));
            for (std::size_t i = 0; i < n; ++i)
                bytes[at + i] = '\0';
            break;
          }
          case 5: { // duplicate a span (shifts every later offset)
            std::size_t at = rng.nextBelow(bytes.size());
            std::size_t n =
                std::min(bytes.size() - at,
                         std::size_t(1) + rng.nextBelow(64));
            bytes.insert(at, bytes.substr(at, n));
            break;
          }
        }
    }
    return bytes;
}

int
run(int argc, const char *const *argv)
{
    ArgParser args(argc, argv);
    const std::uint64_t budget_ms = args.getUint("ms", 2000);
    const std::uint64_t seed = args.getUint("seed", 1);
    const bool verbose = args.has("verbose");
    const std::string format = args.get("format", "both");
    if (format != "text" && format != "gmt" && format != "both") {
        std::fprintf(stderr,
                     "unknown --format '%s' (use text, gmt or both)\n",
                     format.c_str());
        return 1;
    }

    Rng rng(seed);
    std::vector<std::string> corpus = buildCorpus();
    std::vector<std::string> gmt_corpus = buildGmtCorpus(corpus);

    std::map<std::string, std::size_t> outcomes;
    std::size_t iterations = 0;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(budget_ms);
    while (std::chrono::steady_clock::now() < deadline) {
        const bool use_gmt =
            format == "gmt" ||
            (format == "both" && rng.nextBelow(2) == 0);

        std::string input;
        if (rng.nextBelow(8) == 0) {
            // Pure noise; half the binary-mode noise keeps the magic
            // so the .gmt header path (not just the sniff) is hit.
            input = garbage(rng);
            if (use_gmt && rng.nextBelow(2) == 0)
                input.insert(0, "GMT!");
        } else if (use_gmt) {
            input = mutateGmt(
                gmt_corpus[rng.nextBelow(gmt_corpus.size())], rng);
        } else {
            input = mutate(corpus[rng.nextBelow(corpus.size())], rng);
        }

        Result<KernelTrace> result = use_gmt
                                         ? parseGmtString(input)
                                         : parseTraceString(input);
        const char *mode = use_gmt ? "gmt" : "text";
        if (result.ok()) {
            outcomes[msg(mode, ":ok")]++;
            // Accepted input must round-trip as a fixpoint of its own
            // format's canonical serialization.
            bool ok;
            if (use_gmt) {
                std::string bytes = gmtToString(result.value());
                Result<KernelTrace> again = parseGmtString(bytes);
                ok = again.ok() &&
                     gmtToString(again.value()) == bytes;
            } else {
                std::string text = traceToString(result.value());
                Result<KernelTrace> again = parseTraceString(text);
                ok = again.ok() &&
                     traceToString(again.value()) == text;
            }
            if (!ok) {
                std::fprintf(stderr,
                             "%s round-trip failure after %zu "
                             "iterations (seed %llu)\n",
                             mode, iterations,
                             static_cast<unsigned long long>(seed));
                return 1;
            }
        } else {
            const Status &s = result.status();
            if (s.message().empty()) {
                std::fprintf(stderr,
                             "empty error message for %s code %s "
                             "(seed %llu)\n",
                             mode, toString(s.code()).c_str(),
                             static_cast<unsigned long long>(seed));
                return 1;
            }
            outcomes[msg(mode, ":", toString(s.code()))]++;
        }
        iterations++;
    }

    std::printf("trace_fuzz: %zu inputs in %llu ms (seed %llu)\n",
                iterations,
                static_cast<unsigned long long>(budget_ms),
                static_cast<unsigned long long>(seed));
    for (const auto &[code, count] : outcomes)
        std::printf("  %-18s %zu\n", code.c_str(), count);
    if (verbose && iterations == 0)
        std::printf("  (budget too small to run any input)\n");
    return 0;
}

} // namespace
} // namespace gpumech

int
main(int argc, char **argv)
{
    return gpumech::run(argc, argv);
}
