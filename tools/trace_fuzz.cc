/**
 * @file
 * Time-budgeted fuzz smoke test for the trace text parser.
 *
 * Starts from a corpus of valid serialized traces, applies random
 * byte/line-level mutations, and feeds the result to parseTraceString.
 * The contract under fuzz:
 *
 *  - the parser never crashes, never throws past the Result boundary,
 *    and never allocates absurdly (count caps reject huge headers
 *    before any reserve);
 *  - every rejection carries a non-Ok StatusCode and a non-empty
 *    message;
 *  - every accepted input round-trips: serialize + re-parse succeeds
 *    and reproduces the same text.
 *
 * Deterministic for a given --seed. The default --ms budget is small
 * enough for ctest; CI runs a longer budget (see ci.yml).
 *
 * Usage: trace_fuzz [--ms N] [--seed N] [--verbose]
 */

#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/args.hh"
#include "common/config.hh"
#include "common/rng.hh"
#include "trace/trace_io.hh"
#include "workloads/workload.hh"

namespace gpumech
{
namespace
{

/** Small valid traces to mutate. */
std::vector<std::string>
buildCorpus()
{
    HardwareConfig config = HardwareConfig::baseline();
    config.numCores = 1;
    config.warpsPerCore = 2;
    std::vector<std::string> corpus;
    for (const char *name :
         {"vectorAdd", "micro_stream", "micro_pointer_chase"}) {
        const Workload *w = findWorkload(name);
        if (w != nullptr)
            corpus.push_back(traceToString(w->generate(config)));
    }
    // Minimal hand-rolled trace: exercises the header/trailer paths
    // with almost no payload to mutate around.
    corpus.push_back("kernel tiny\nstatic 1\n0 ialu -\n"
                     "warps 1\nwarp 0 0 1\n0\nend\n");
    return corpus;
}

std::string
mutate(const std::string &base, Rng &rng)
{
    std::string text = base;
    unsigned rounds = 1 + rng.nextBelow(4);
    for (unsigned r = 0; r < rounds; ++r) {
        if (text.empty())
            break;
        switch (rng.nextBelow(6)) {
          case 0: // flip one byte to random printable ASCII
            text[rng.nextBelow(text.size())] =
                static_cast<char>(' ' + rng.nextBelow(95));
            break;
          case 1: // truncate at a random point
            text.resize(rng.nextBelow(text.size() + 1));
            break;
          case 2: { // insert a huge or negative number
            const char *payloads[] = {"99999999999999999999",
                                      "1099511627776", "-7", "0"};
            text.insert(rng.nextBelow(text.size()),
                        payloads[rng.nextBelow(4)]);
            break;
          }
          case 3: { // duplicate a random line
            std::size_t start = text.rfind('\n', rng.nextBelow(text.size()));
            start = (start == std::string::npos) ? 0 : start + 1;
            std::size_t end = text.find('\n', start);
            if (end == std::string::npos)
                end = text.size();
            text.insert(start, text.substr(start, end - start + 1));
            break;
          }
          case 4: { // delete a random span
            std::size_t at = rng.nextBelow(text.size());
            text.erase(at, 1 + rng.nextBelow(16));
            break;
          }
          case 5: { // splice in a keyword where it does not belong
            const char *keywords[] = {"kernel x\n", "warps ",
                                      "end\n", "static "};
            text.insert(rng.nextBelow(text.size()),
                        keywords[rng.nextBelow(4)]);
            break;
          }
        }
    }
    return text;
}

/** Pure-noise input, no valid structure at all. */
std::string
garbage(Rng &rng)
{
    std::string text(rng.nextBelow(256), '\0');
    for (char &c : text)
        c = static_cast<char>(1 + rng.nextBelow(126));
    return text;
}

int
run(int argc, const char *const *argv)
{
    ArgParser args(argc, argv);
    const std::uint64_t budget_ms = args.getUint("ms", 2000);
    const std::uint64_t seed = args.getUint("seed", 1);
    const bool verbose = args.has("verbose");

    Rng rng(seed);
    std::vector<std::string> corpus = buildCorpus();

    std::map<std::string, std::size_t> outcomes;
    std::size_t iterations = 0;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(budget_ms);
    while (std::chrono::steady_clock::now() < deadline) {
        std::string input =
            (rng.nextBelow(8) == 0)
                ? garbage(rng)
                : mutate(corpus[rng.nextBelow(corpus.size())], rng);

        Result<KernelTrace> result = parseTraceString(input);
        if (result.ok()) {
            outcomes["ok"]++;
            // Accepted input must round-trip.
            std::string text = traceToString(result.value());
            Result<KernelTrace> again = parseTraceString(text);
            if (!again.ok() || traceToString(again.value()) != text) {
                std::fprintf(stderr,
                             "round-trip failure after %zu iterations "
                             "(seed %llu)\ninput:\n%s\n",
                             iterations,
                             static_cast<unsigned long long>(seed),
                             input.c_str());
                return 1;
            }
        } else {
            const Status &s = result.status();
            if (s.message().empty()) {
                std::fprintf(stderr,
                             "empty error message for code %s "
                             "(seed %llu)\ninput:\n%s\n",
                             toString(s.code()).c_str(),
                             static_cast<unsigned long long>(seed),
                             input.c_str());
                return 1;
            }
            outcomes[toString(s.code())]++;
        }
        iterations++;
    }

    std::printf("trace_fuzz: %zu inputs in %llu ms (seed %llu)\n",
                iterations,
                static_cast<unsigned long long>(budget_ms),
                static_cast<unsigned long long>(seed));
    for (const auto &[code, count] : outcomes)
        std::printf("  %-18s %zu\n", code.c_str(), count);
    if (verbose && iterations == 0)
        std::printf("  (budget too small to run any input)\n");
    return 0;
}

} // namespace
} // namespace gpumech

int
main(int argc, char **argv)
{
    return gpumech::run(argc, argv);
}
