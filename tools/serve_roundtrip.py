#!/usr/bin/env python3
"""End-to-end round trip against the gpumech_serve daemon.

Launches the daemon (path in argv[1]), pipes a mixed batch of valid,
malformed, invalid-argument, unknown-target, and deadline-exceeded
requests over stdin, then validates the JSON-lines responses:

  * every response line parses under python's strict json module, and
    the full transcript re-parses under `python3 -m json.tool`
    (an independent external validator, one document per line);
  * every request receives exactly one response, matched by id;
  * status/ok/code fields follow the CLI exit-code contract
    (0 success, 2 contained partial failure, 1 total failure);
  * a warm repeat of a model request hits the session cache instead
    of rebuilding inputs (profiler hit, zero misses);
  * the daemon drains gracefully on EOF and exits 0.

A second phase starts the daemon in socket mode, parks a batch of
requests behind an injected 300ms stall, and SIGTERMs the daemon with
the batch still in flight: every admitted request must be answered, in
seq order, before the socket closes, and the daemon must exit 0 with a
drain summary.

Exits non-zero with a diagnostic on the first violated expectation.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time


def fail(why, *context):
    print("FAIL:", why, file=sys.stderr)
    for item in context:
        print("  ", item, file=sys.stderr)
    sys.exit(1)


REQUESTS = [
    # (id, line) — id None marks the malformed line the reader thread
    # must answer with a parse error rather than dropping.
    ("m1", {"id": "m1", "cmd": "model", "kernel": "micro_stream",
            "config": {"warps": 4, "cores": 2}}),
    ("m2", {"id": "m2", "cmd": "model", "kernel": "micro_stream",
            "config": {"warps": 4, "cores": 2}}),
    (None, "this line is not json"),
    ("missing", {"id": "missing", "cmd": "model",
                 "kernel": "no_such_kernel"}),
    ("badcfg", {"id": "badcfg", "cmd": "model",
                "kernel": "micro_stream", "config": {"warps": 0}}),
    # The stalled kernel must be one the m1/m2 warm-up did NOT prime:
    # the collect-site injection only fires when inputs are actually
    # rebuilt, and a session-cache hit skips that stage entirely.
    ("dl", {"id": "dl", "cmd": "suite", "suite": "micro",
            "predict": True, "config": {"warps": 4, "cores": 2},
            "timeout_ms": 30,
            "inject": "micro_pointer_chase:collect:1:500"}),
    ("ping", {"id": "ping", "cmd": "ping"}),
    ("stats", {"id": "stats", "cmd": "stats"}),
]


def main():
    if len(sys.argv) != 2:
        fail("usage: serve_roundtrip.py <gpumech_serve binary>")
    serve_bin = sys.argv[1]

    stdin = "".join(
        (line if isinstance(line, str) else json.dumps(line)) + "\n"
        for _, line in REQUESTS)

    # max-batch 1 keeps responses in request order, which lets the
    # order assertions below stay exact.
    proc = subprocess.run(
        [serve_bin, "--max-batch", "1"],
        input=stdin, capture_output=True, text=True, timeout=120)
    if proc.returncode != 0:
        fail("daemon exited %d" % proc.returncode, proc.stderr)
    if "drained" not in proc.stderr:
        fail("no drain summary on stderr", proc.stderr)

    lines = [ln for ln in proc.stdout.splitlines() if ln.strip()]
    if len(lines) != len(REQUESTS):
        fail("expected %d response lines, got %d"
             % (len(REQUESTS), len(lines)), *lines)

    # Independent strict validator over the whole transcript: each
    # response line must be a standalone JSON document.
    for ln in lines:
        tool = subprocess.run(
            [sys.executable, "-m", "json.tool"],
            input=ln, capture_output=True, text=True)
        if tool.returncode != 0:
            fail("json.tool rejected a response line",
                 ln, tool.stderr)

    responses = [json.loads(ln) for ln in lines]
    for resp in responses:
        for field in ("seq", "ok", "code", "status", "kernels",
                      "failed", "cache", "wall_ms", "output"):
            if field not in resp:
                fail("response missing field '%s'" % field, resp)
    seqs = [resp["seq"] for resp in responses]
    if sorted(seqs) != list(range(1, len(REQUESTS) + 1)):
        fail("response seqs are not 1..%d" % len(REQUESTS), seqs)

    by_id = {}
    for resp in responses:
        if "id" in resp:
            if resp["id"] in by_id:
                fail("duplicate response id", resp)
            by_id[resp["id"]] = resp
    parse_errors = [r for r in responses if "id" not in r]

    # Cold model evaluation succeeds and builds inputs.
    m1 = by_id["m1"]
    if not (m1["ok"] and m1["code"] == 0 and m1["failed"] == 0):
        fail("m1 should fully succeed", m1)
    if m1["cache"]["profiler_misses"] < 1:
        fail("cold request should miss the profiler cache", m1)

    # Warm repeat: identical output, served from cache.
    m2 = by_id["m2"]
    if not (m2["ok"] and m2["code"] == 0):
        fail("m2 should fully succeed", m2)
    if m2["cache"]["profiler_misses"] != 0 \
            or m2["cache"]["profiler_hits"] < 1:
        fail("warm repeat should hit the profiler cache", m2)
    if m2["output"] != m1["output"]:
        fail("warm repeat diverged from cold output", m1, m2)

    # The malformed line earns a parse_error response, not silence.
    if len(parse_errors) != 1:
        fail("expected exactly one id-less parse error response",
             *responses)
    bad = parse_errors[0]
    if bad["ok"] or bad["code"] != 1 or bad["status"] != "parse_error":
        fail("malformed line should yield parse_error, exit 1", bad)
    if "error" not in bad:
        fail("failed response should carry an error message", bad)

    # Unknown kernel and invalid config are total failures (exit 1).
    # badcfg is rejected at request validation, before reaching the
    # engine — the daemon must still echo its correlation id.
    missing = by_id["missing"]
    if missing["ok"] or missing["code"] != 1 \
            or missing["status"] != "not_found":
        fail("unknown kernel should be not_found, exit 1", missing)
    badcfg = by_id["badcfg"]
    if badcfg["ok"] or badcfg["code"] != 1 \
            or badcfg["status"] != "invalid_argument":
        fail("warps=0 should be invalid_argument, exit 1", badcfg)

    # Deadline-exceeded kernel is contained: partial success, the
    # stalled kernel is reported failed, the suite still answers.
    dl = by_id["dl"]
    if not dl["ok"] or dl["code"] != 2 or dl["failed"] < 1:
        fail("deadline request should be contained partial (code 2)",
             dl)
    if "deadline_exceeded" not in dl["output"]:
        fail("deadline failure class missing from suite output", dl)

    # Control verbs.
    if by_id["ping"]["output"] != "pong\n":
        fail("ping should answer pong", by_id["ping"])
    # The two reader-rejected lines (malformed, badcfg) never reach
    # the engine, so stats counts the five prior handled requests.
    stats = json.loads(by_id["stats"]["output"])
    if stats["requests"] != 5:
        fail("stats should count the 5 engine-handled requests",
             stats)

    print("serve round trip OK: %d responses validated" % len(lines))


def read_socket_lines(sock, count, deadline=60.0):
    """Read `count` newline-terminated lines, then expect EOF."""
    sock.settimeout(deadline)
    buf = b""
    lines = []
    while True:
        try:
            chunk = sock.recv(65536)
        except socket.timeout:
            fail("timed out waiting for drain responses",
                 len(lines), "of", count)
        if not chunk:
            break
        buf += chunk
        while b"\n" in buf:
            line, buf = buf.split(b"\n", 1)
            lines.append(line.decode())
    if len(lines) != count:
        fail("expected %d responses then EOF, got %d"
             % (count, len(lines)), *lines)
    return lines


def socket_drain():
    """SIGTERM with batched requests in flight on the socket path."""
    serve_bin = sys.argv[1]
    sock_dir = tempfile.mkdtemp(prefix="gm_rt_")
    sock_path = os.path.join(sock_dir, "serve.sock")
    proc = subprocess.Popen(
        [serve_bin, "--socket", sock_path, "--dispatch", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    try:
        end = time.time() + 30.0
        while not os.path.exists(sock_path):
            if proc.poll() is not None:
                fail("daemon died before binding", proc.returncode)
            if time.time() > end:
                fail("socket never appeared")
            time.sleep(0.05)

        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(sock_path)
        batch = [{"id": "slow", "cmd": "suite", "suite": "micro",
                  "predict": True,
                  "config": {"warps": 4, "cores": 2},
                  "inject": "micro_stream:collect:1:300"}]
        batch += [{"id": "t%d" % i, "cmd": "ping"} for i in range(4)]
        sock.sendall("".join(
            json.dumps(req) + "\n" for req in batch).encode())
        time.sleep(0.2)  # let the reader admit the batch
        proc.send_signal(signal.SIGTERM)

        lines = read_socket_lines(sock, len(batch))
        sock.close()
        responses = [json.loads(ln) for ln in lines]
        seqs = [resp["seq"] for resp in responses]
        if seqs != sorted(seqs) or len(set(seqs)) != len(batch):
            fail("drain responses out of order or duplicated", seqs)
        got_ids = {resp["id"] for resp in responses}
        want_ids = {req["id"] for req in batch}
        if got_ids != want_ids:
            fail("drain lost or misrouted responses",
                 sorted(got_ids), sorted(want_ids))

        out, err = proc.communicate(timeout=60)
        if proc.returncode != 0:
            fail("daemon exited %d after drain" % proc.returncode,
                 err)
        if "drained" not in err:
            fail("no drain summary on stderr", err)
        print("socket drain OK: %d in-flight requests answered "
              "across SIGTERM" % len(batch))
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        try:
            os.unlink(sock_path)
        except OSError:
            pass
        try:
            os.rmdir(sock_dir)
        except OSError:
            pass


if __name__ == "__main__":
    main()
    socket_drain()
