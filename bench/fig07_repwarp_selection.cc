/**
 * @file
 * Figure 7 reproduction: GPUMech error on the control-divergent
 * kernels under three representative-warp selection methods — MAX
 * (highest single-warp IPC), MIN (lowest), and the paper's 2-cluster
 * k-means (Clustering). Round-robin policy, Table I configuration.
 *
 * Paper shape: for some kernels all three coincide (warp profiles are
 * near-uniform); where they differ, Clustering usually has the best
 * accuracy.
 */

#include <iostream>

#include "common/stats.hh"
#include "common/table.hh"
#include "harness/experiment.hh"
#include "timing/gpu_timing.hh"

using namespace gpumech;

int
main()
{
    HardwareConfig config = HardwareConfig::baseline();
    std::cout << "=== Figure 7: representative-warp selection on "
                 "control-divergent kernels ===\n";
    std::cout << "config: " << config.summary() << "\n\n";

    auto kernels = controlDivergentWorkloads();
    Table t({"kernel", "oracle CPI", "MAX", "MIN", "Clustering"});
    std::map<RepSelection, std::vector<double>> errors;

    for (const auto &workload : kernels) {
        KernelTrace kernel = workload.generate(config);
        GpuTiming oracle(kernel, config, SchedulingPolicy::RoundRobin);
        TimingStats stats = oracle.run();
        double oracle_ipc = 1.0 / stats.cpi();

        std::vector<std::string> row{workload.name,
                                     fmtDouble(stats.cpi(), 2)};
        for (RepSelection sel :
             {RepSelection::MaxPerf, RepSelection::MinPerf,
              RepSelection::Clustering}) {
            GpuMechOptions options;
            options.policy = SchedulingPolicy::RoundRobin;
            options.selection = sel;
            GpuMechResult r = runGpuMech(kernel, config, options);
            double err = relativeError(r.ipc, oracle_ipc);
            errors[sel].push_back(err);
            row.push_back(fmtPercent(err));
        }
        t.addRow(std::move(row));
    }
    t.print(std::cout);

    std::cout << "\nAverage error per selection method:\n";
    for (auto sel : {RepSelection::MaxPerf, RepSelection::MinPerf,
                     RepSelection::Clustering}) {
        std::cout << "  " << toString(sel) << ": "
                  << fmtPercent(mean(errors[sel])) << "\n";
    }
    std::cout << "\npaper shape: Clustering has the best (or tied) "
                 "average accuracy across control-divergent kernels.\n";
    return 0;
}
