/**
 * @file
 * Flat-trace engine bench: memory density and end-to-end speed.
 *
 * Two measurements, reported to stdout and BENCH_trace_layout.json:
 *
 *  1. bytes per dynamic instruction of the flat SoA kernel trace
 *     (kernel-level field arrays + one Addr arena) against an in-bench
 *     reconstruction of the old AoS layout (per-warp WarpInst vectors,
 *     each memory instruction owning a std::vector<Addr>), on the
 *     stress suite;
 *  2. hot-loop traversal time over the same dynamic instructions —
 *     the access pattern of the interval builder and collector —
 *     through the flat arrays vs through the AoS mirror (one heap
 *     block per memory instruction), which isolates the layout's
 *     effect from thread scaling;
 *  3. end-to-end single-kernel pipeline time — functional cache
 *     simulation + per-warp interval profiling + representative
 *     selection + model evaluation — serial (the "before" engine shape)
 *     vs the intra-kernel parallel collection path at 2/4/8 threads,
 *     with every parallel result verified bit-identical before times
 *     are reported.
 *
 * Options: --reps N (timing repetitions, default 3; best-of is kept)
 *          --out FILE (JSON path, default BENCH_trace_layout.json)
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "gates.hh"

#include "common/args.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "core/gpumech.hh"
#include "workloads/workload.hh"

using namespace gpumech;

namespace
{

using clock_type = std::chrono::steady_clock;

/** Best-of-@p reps wall-clock time of fn(), in milliseconds. */
template <typename Fn>
double
timeMs(unsigned reps, Fn &&fn)
{
    double best = 0.0;
    for (unsigned r = 0; r < reps; ++r) {
        auto t0 = clock_type::now();
        fn();
        double ms = std::chrono::duration<double, std::milli>(
                        clock_type::now() - t0)
                        .count();
        if (r == 0 || ms < best)
            best = ms;
    }
    return best;
}

// ---- in-bench mirror of the retired AoS layout ---------------------
// Each dynamic instruction is a standalone struct owning its coalesced
// line list; each warp owns a vector of them. This is what the trace
// looked like before the flat SoA refactor, rebuilt here only to
// measure its allocated footprint.

struct AosInst
{
    std::uint32_t pc = 0;
    Opcode op = Opcode::IntAlu;
    std::uint32_t activeThreads = 0;
    DepArray deps = {noDep, noDep, noDep};
    std::vector<Addr> lines;
};

struct AosWarp
{
    std::uint32_t warpId = 0;
    std::uint32_t blockId = 0;
    std::vector<AosInst> insts;
};

std::vector<AosWarp>
mirrorAos(const KernelTrace &kernel)
{
    std::vector<AosWarp> warps;
    warps.reserve(kernel.numWarps());
    for (WarpView view : kernel.warps()) {
        AosWarp w;
        w.warpId = view.warpId();
        w.blockId = view.blockId();
        w.insts.resize(view.numInsts());
        for (std::size_t i = 0; i < view.numInsts(); ++i) {
            AosInst &inst = w.insts[i];
            inst.pc = view.pc(i);
            inst.op = view.op(i);
            inst.activeThreads = view.activeThreads(i);
            inst.deps = view.deps(i);
            inst.lines = view.lines(i).toVector();
        }
        warps.push_back(std::move(w));
    }
    return warps;
}

/** Allocated bytes of the AoS mirror (capacities, like the flat side). */
std::size_t
aosFootprint(const std::vector<AosWarp> &warps)
{
    std::size_t bytes = warps.capacity() * sizeof(AosWarp);
    for (const AosWarp &w : warps) {
        bytes += w.insts.capacity() * sizeof(AosInst);
        for (const AosInst &inst : w.insts)
            bytes += inst.lines.capacity() * sizeof(Addr);
    }
    return bytes;
}

// ---- hot-loop traversal ---------------------------------------------
// Touch every field the interval builder and collector read, in issue
// order, summing into a checksum so the walks cannot be optimized
// away and so the two layouts can be cross-checked for agreement.

std::uint64_t
walkSoa(const KernelTrace &kernel)
{
    std::uint64_t sum = 0;
    for (WarpView warp : kernel.warps()) {
        const std::uint32_t *pc = warp.pcData();
        const Opcode *op = warp.opData();
        const std::uint32_t *active = warp.activeData();
        const DepArray *deps = warp.depData();
        for (std::size_t i = 0; i < warp.numInsts(); ++i) {
            sum += pc[i] + static_cast<std::uint32_t>(op[i]) +
                   active[i];
            for (std::int32_t d : deps[i])
                sum += static_cast<std::uint64_t>(d + 1);
            for (Addr line : warp.lines(i))
                sum += line;
        }
    }
    return sum;
}

std::uint64_t
walkAos(const std::vector<AosWarp> &warps)
{
    std::uint64_t sum = 0;
    for (const AosWarp &w : warps) {
        for (const AosInst &inst : w.insts) {
            sum += inst.pc + static_cast<std::uint32_t>(inst.op) +
                   inst.activeThreads;
            for (std::int32_t d : inst.deps)
                sum += static_cast<std::uint64_t>(d + 1);
            for (Addr line : inst.lines)
                sum += line;
        }
    }
    return sum;
}

/** One full single-kernel model evaluation at a given thread count. */
GpuMechResult
runPipeline(const KernelTrace &kernel, const HardwareConfig &config,
            unsigned jobs)
{
    GpuMechProfiler profiler(kernel, config, RepSelection::Clustering,
                             2, jobs);
    return profiler.evaluate(SchedulingPolicy::RoundRobin);
}

bool
sameResult(const GpuMechResult &a, const GpuMechResult &b)
{
    return a.cpi == b.cpi && a.ipc == b.ipc &&
           a.repWarpIndex == b.repWarpIndex &&
           a.stack.total() == b.stack.total();
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    unsigned reps = args.getUint("reps", 3);
    std::string out_path = args.get("out", "BENCH_trace_layout.json");

    std::cout << "=== Flat-trace engine: layout + end-to-end bench ===\n";
    std::cout << "hardware threads: "
              << std::thread::hardware_concurrency() << ", reps: "
              << reps << " (best-of)\n\n";

    JsonWriter json;
    json.field("bench", "ext_trace_layout");
    json.field("hardware_threads",
               static_cast<std::uint64_t>(
                   std::thread::hardware_concurrency()));

    HardwareConfig config = HardwareConfig::baseline();
    std::vector<Workload> suite = stressWorkloads();

    // ---- 1. bytes per dynamic instruction --------------------------
    Table mem_table({"kernel", "insts", "flat B/inst", "aos B/inst",
                     "reduction"});
    json.beginObject("layout");
    double flat_total = 0.0, aos_total = 0.0;
    std::uint64_t inst_total = 0;
    for (const Workload &w : suite) {
        KernelTrace kernel = w.generate(config);
        auto aos = mirrorAos(kernel);
        double insts = static_cast<double>(kernel.totalInsts());
        double flat_bpi =
            static_cast<double>(kernel.memoryFootprint()) / insts;
        double aos_bpi =
            static_cast<double>(aosFootprint(aos)) / insts;
        mem_table.addRow({w.name, std::to_string(kernel.totalInsts()),
                          fmtDouble(flat_bpi, 1), fmtDouble(aos_bpi, 1),
                          fmtDouble(aos_bpi / flat_bpi, 2)});
        json.beginObject(w.name);
        json.field("total_insts", kernel.totalInsts());
        json.field("flat_bytes_per_inst", flat_bpi);
        json.field("aos_bytes_per_inst", aos_bpi);
        json.field("reduction", aos_bpi / flat_bpi);
        json.endObject();
        flat_total += static_cast<double>(kernel.memoryFootprint());
        aos_total += static_cast<double>(aosFootprint(aos));
        inst_total += kernel.totalInsts();
    }
    double flat_bpi = flat_total / static_cast<double>(inst_total);
    double aos_bpi = aos_total / static_cast<double>(inst_total);
    json.field("suite_flat_bytes_per_inst", flat_bpi);
    json.field("suite_aos_bytes_per_inst", aos_bpi);
    json.field("suite_reduction", aos_bpi / flat_bpi);
    json.endObject();

    std::cout << "-- trace memory (stress suite, baseline config) --\n";
    mem_table.print(std::cout);
    std::cout << "suite: " << fmtDouble(flat_bpi, 1)
              << " B/inst flat vs " << fmtDouble(aos_bpi, 1)
              << " B/inst AoS (" << fmtDouble(aos_bpi / flat_bpi, 2)
              << "x reduction)\n\n";

    // ---- 2. hot-loop traversal: flat arrays vs AoS mirror ----------
    Table walk_table({"kernel", "soa ms", "aos ms", "speedup"});
    json.beginObject("hot_loop");
    double soa_sum = 0.0, aos_walk_sum = 0.0;
    for (const Workload &w : suite) {
        KernelTrace kernel = w.generate(config);
        auto aos = mirrorAos(kernel);
        std::uint64_t soa_check = walkSoa(kernel);
        if (soa_check != walkAos(aos))
            fatal(msg("layout walks disagree on ", w.name));
        volatile std::uint64_t sink = 0;
        double soa_ms = timeMs(reps, [&] { sink += walkSoa(kernel); });
        double aos_ms = timeMs(reps, [&] { sink += walkAos(aos); });
        walk_table.addRow({w.name, fmtDouble(soa_ms, 3),
                           fmtDouble(aos_ms, 3),
                           fmtDouble(aos_ms / soa_ms, 2)});
        json.beginObject(w.name);
        json.field("soa_ms", soa_ms);
        json.field("aos_ms", aos_ms);
        json.field("speedup", aos_ms / soa_ms);
        json.endObject();
        soa_sum += soa_ms;
        aos_walk_sum += aos_ms;
    }
    double walk_speedup = aos_walk_sum / soa_sum;
    json.field("suite_soa_ms", soa_sum);
    json.field("suite_aos_ms", aos_walk_sum);
    json.field("suite_speedup", walk_speedup);
    json.endObject();

    std::cout << "-- hot-loop traversal (interval/collector access "
                 "pattern) --\n";
    walk_table.print(std::cout);
    std::cout << "suite: flat layout walks "
              << fmtDouble(walk_speedup, 2) << "x faster than AoS\n\n";

    // ---- 3. end-to-end single-kernel pipeline ----------------------
    Table e2e_table({"kernel", "gen ms", "serial ms", "t2 ms", "t4 ms",
                     "t8 ms", "t8 speedup", "identical"});
    json.beginObject("end_to_end");
    double gen_sum = 0.0, serial_sum = 0.0, t8_sum = 0.0;
    for (const Workload &w : suite) {
        volatile std::uint64_t gen_sink = 0;
        double gen_ms = timeMs(reps, [&] {
            KernelTrace k = w.generate(config);
            gen_sink = gen_sink + k.totalInsts();
        });
        KernelTrace kernel = w.generate(config);

        setDefaultJobs(1);
        GpuMechResult baseline = runPipeline(kernel, config, 1);
        double serial_ms =
            timeMs(reps, [&] { runPipeline(kernel, config, 1); });

        double ms_at[9] = {};
        bool identical = true;
        for (unsigned t : {2u, 4u, 8u}) {
            setDefaultJobs(t);
            if (!sameResult(runPipeline(kernel, config, t), baseline))
                identical = false;
            ms_at[t] =
                timeMs(reps, [&] { runPipeline(kernel, config, t); });
        }
        if (!identical)
            fatal(msg("parallel pipeline diverged on ", w.name));

        e2e_table.addRow({w.name, fmtDouble(gen_ms, 2),
                          fmtDouble(serial_ms, 2),
                          fmtDouble(ms_at[2], 2), fmtDouble(ms_at[4], 2),
                          fmtDouble(ms_at[8], 2),
                          fmtDouble(serial_ms / ms_at[8], 2), "yes"});
        json.beginObject(w.name);
        json.field("gen_ms", gen_ms);
        json.field("serial_ms", serial_ms);
        json.field("t2_ms", ms_at[2]);
        json.field("t4_ms", ms_at[4]);
        json.field("t8_ms", ms_at[8]);
        json.field("t8_speedup", serial_ms / ms_at[8]);
        json.endObject();
        gen_sum += gen_ms;
        serial_sum += serial_ms;
        t8_sum += ms_at[8];
    }
    double suite_speedup = serial_sum / t8_sum;
    json.field("suite_gen_ms", gen_sum);
    json.field("suite_serial_ms", serial_sum);
    json.field("suite_t8_ms", t8_sum);
    json.field("suite_t8_speedup", suite_speedup);
    // Thread-scaling claim: vacuous on a 1-thread machine, where it
    // records "skipped" rather than a hollow "pass".
    json.field("t8_speedup_gate",
               threadScalingGate(suite_speedup >= 1.0));
    json.endObject();
    setDefaultJobs(0);

    std::cout << "-- end-to-end single-kernel pipeline (collector + "
                 "profiling + evaluation) --\n";
    e2e_table.print(std::cout);
    std::cout << "\nheadline: flat layout stores "
              << fmtDouble(aos_bpi / flat_bpi, 2)
              << "x fewer bytes per dynamic instruction and walks "
              << fmtDouble(walk_speedup, 2)
              << "x faster than the retired AoS layout; 8-thread "
                 "pipeline is "
              << fmtDouble(suite_speedup, 2)
              << "x serial over the stress suite on this machine.\n";

    std::ofstream out(out_path);
    if (!out)
        fatal(msg("cannot open ", out_path, " for writing"));
    out << json.finish() << "\n";
    std::cout << "\nwrote " << out_path << "\n";
    return 0;
}
