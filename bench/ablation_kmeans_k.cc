/**
 * @file
 * Ablation of the paper's fixed cluster count: Section III-C sets
 * k = 2 ("one cluster for the majority warps, one for the outliers").
 * We sweep k over {1, 2, 3, 4, 6} on the control-divergent kernels
 * and report the average GPUMech error, validating that k = 2 is a
 * reasonable choice and more clusters do not pay for themselves.
 */

#include <iostream>

#include "common/stats.hh"
#include "common/table.hh"
#include "harness/experiment.hh"
#include "timing/gpu_timing.hh"

using namespace gpumech;

int
main()
{
    HardwareConfig config = HardwareConfig::baseline();
    std::cout << "=== Ablation: k-means cluster count ===\n";
    std::cout << "config: " << config.summary() << "\n\n";

    const std::vector<std::uint32_t> ks = {1, 2, 3, 4, 6};
    auto kernels = controlDivergentWorkloads();

    Table t({"kernel", "k=1", "k=2", "k=3", "k=4", "k=6"});
    std::map<std::uint32_t, std::vector<double>> errors;

    for (const auto &workload : kernels) {
        KernelTrace kernel = workload.generate(config);
        GpuTiming oracle(kernel, config, SchedulingPolicy::RoundRobin);
        double oracle_ipc = 1.0 / oracle.run().cpi();

        std::vector<std::string> row{workload.name};
        for (std::uint32_t k : ks) {
            GpuMechOptions options;
            options.numClusters = k;
            GpuMechResult r = runGpuMech(kernel, config, options);
            double err = relativeError(r.ipc, oracle_ipc);
            errors[k].push_back(err);
            row.push_back(fmtPercent(err));
        }
        t.addRow(std::move(row));
    }
    t.print(std::cout);

    std::cout << "\nAverage error per k:\n";
    for (std::uint32_t k : ks) {
        std::cout << "  k=" << k << ": " << fmtPercent(mean(errors[k]))
                  << "\n";
    }
    std::cout << "\npaper choice: k=2; the sweep shows whether larger "
                 "k changes accuracy on control-divergent kernels.\n";
    return 0;
}
