/**
 * @file
 * Figure 12 reproduction: per-kernel relative performance error of
 * the five Table II models against detailed timing simulation, for
 * the greedy-then-oldest scheduling policy at the Table I
 * configuration.
 *
 * Paper shape: same trend as the round-robin comparison; GPUMech
 * average error 14.0% vs Markov_Chain 65.3%.
 */

#include <iostream>

#include "common/args.hh"
#include "common/thread_pool.hh"
#include "common/table.hh"
#include "harness/experiment.hh"

using namespace gpumech;

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    if (args.has("jobs"))
        setDefaultJobs(args.getUint("jobs", 0));
    bool verbose = args.has("verbose") || args.has("v");
    HardwareConfig config = HardwareConfig::baseline();
    std::cout << "=== Figure 12: model comparison, greedy-then-oldest "
                 "===\n";
    std::cout << "config: " << config.summary() << "\n\n";

    auto evals = evaluateSuite(evaluationWorkloads(), config,
                               SchedulingPolicy::GreedyThenOldest,
                               allModels(), verbose);

    Table t({"kernel", "oracle CPI", "Naive", "Markov", "MT",
             "MT_MSHR", "GPUMech"});
    for (const auto &e : evals) {
        t.addRow({e.kernel,
                  fmtDouble(e.oracleCpi, 2),
                  fmtPercent(e.error(ModelKind::NaiveInterval), 0),
                  fmtPercent(e.error(ModelKind::MarkovChain), 0),
                  fmtPercent(e.error(ModelKind::MT), 0),
                  fmtPercent(e.error(ModelKind::MT_MSHR), 0),
                  fmtPercent(e.error(ModelKind::MT_MSHR_BAND), 1)});
    }
    if (args.has("csv")) {
        t.printCsv(std::cout);
    } else {
        t.print(std::cout);
    }

    std::cout << "\nAverage error per model:\n";
    for (ModelKind kind : allModels()) {
        std::cout << "  " << toString(kind) << ": "
                  << fmtPercent(averageError(evals, kind)) << "\n";
    }
    std::cout << "\npaper: GPUMech avg 14.0% (GTO), Markov_Chain avg "
                 "65.3%.\n";
    return 0;
}
