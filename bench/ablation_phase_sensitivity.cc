/**
 * @file
 * Ablation: sensitivity of the steady-state contention aggregation to
 * phased kernel behaviour.
 *
 * The contention models compare aggregate resource demand against the
 * whole profile's execution span (DESIGN.md, correction #2). Kernels
 * whose contention is concentrated in phases violate the steady-state
 * assumption; this bench quantifies the resulting error on the
 * dedicated stress suite versus the uniform evaluation kernels, so
 * the model's known limitation carries a number.
 */

#include <iostream>

#include "common/stats.hh"
#include "common/table.hh"
#include "harness/experiment.hh"

using namespace gpumech;

int
main()
{
    HardwareConfig config = HardwareConfig::baseline();
    std::cout << "=== Ablation: phased-kernel sensitivity ===\n";
    std::cout << "config: " << config.summary() << "\n\n";

    auto report = [&](const std::vector<Workload> &kernels,
                      const std::string &label,
                      std::vector<double> &errors) {
        Table t({"kernel", "oracle CPI", "GPUMech CPI", "error"});
        for (const auto &workload : kernels) {
            KernelEvaluation eval =
                evaluateKernel(workload, config,
                               SchedulingPolicy::RoundRobin,
                               {ModelKind::MT_MSHR_BAND});
            double err = eval.error(ModelKind::MT_MSHR_BAND);
            errors.push_back(err);
            t.addRow({workload.name, fmtDouble(eval.oracleCpi, 2),
                      fmtDouble(1.0 / eval.predictedIpc.at(
                                          ModelKind::MT_MSHR_BAND),
                                2),
                      fmtPercent(err)});
        }
        std::cout << "-- " << label << " --\n";
        t.print(std::cout);
        std::cout << "\n";
    };

    std::vector<double> stress_errors;
    report(stressWorkloads(), "phased stress kernels", stress_errors);

    // Uniform comparators with similar ingredients.
    std::vector<Workload> uniform = {
        workloadByName("micro_stream"),
        workloadByName("micro_divergent8"),
        workloadByName("micro_divergent32"),
        workloadByName("micro_write_burst"),
    };
    std::vector<double> uniform_errors;
    report(uniform, "uniform comparators", uniform_errors);

    std::cout << "Average GPUMech error: phased "
              << fmtPercent(mean(stress_errors)) << " vs uniform "
              << fmtPercent(mean(uniform_errors)) << "\n";
    std::cout << "\ninterpretation: a moderate penalty on phased "
                 "kernels is the cost of the steady-state aggregation "
                 "that fixes the per-interval over-charging on "
                 "uniform loop kernels (DESIGN.md correction #2).\n";
    return 0;
}
