/**
 * @file
 * Figure 16 reproduction: CPI stacks of cfd_step_factor,
 * cfd_compute_flux and kmeans_invert_mapping at {8, 16, 32, 48} warps
 * per core, with the oracle CPI alongside (the paper's line series).
 * All CPIs are normalized by the oracle CPI at 8 warps, as in the
 * paper.
 *
 * Paper shape: GPUMech predicts each kernel's scaling trend —
 * step_factor scales well (DRAM latency bound, little congestion),
 * compute_flux saturates around 32 warps as MSHR dominates, and
 * invert_mapping is QUEUE-dominated (divergent writes) with a high L1
 * share.
 */

#include <iostream>

#include "common/table.hh"
#include "harness/experiment.hh"

using namespace gpumech;

int
main()
{
    std::cout << "=== Figure 16: CPI stacks vs warps per core ===\n\n";

    const std::vector<std::string> kernels = {
        "cfd_step_factor", "cfd_compute_flux", "kmeans_invert_mapping"};
    const std::vector<std::uint32_t> warp_counts = {8, 16, 32, 48};

    for (const auto &name : kernels) {
        const Workload &workload = workloadByName(name);
        std::cout << "--- " << name << " (" << workload.description
                  << ") ---\n";

        Table t({"warps", "BASE", "DEP", "L1", "L2", "DRAM", "MSHR",
                 "QUEUE", "model CPI", "oracle CPI", "norm model",
                 "norm oracle"});

        double base_oracle = 0.0;
        for (std::uint32_t warps : warp_counts) {
            HardwareConfig config = HardwareConfig::baseline();
            config.warpsPerCore = warps;
            StackEvaluation eval = evaluateStack(
                workload, config, SchedulingPolicy::RoundRobin);
            double oracle_cpi = eval.oracle.cpi();
            if (base_oracle == 0.0)
                base_oracle = oracle_cpi;

            const CpiStack &s = eval.model.stack;
            t.addRow({std::to_string(warps),
                      fmtDouble(s[StallType::Base], 2),
                      fmtDouble(s[StallType::Dep], 2),
                      fmtDouble(s[StallType::L1], 2),
                      fmtDouble(s[StallType::L2], 2),
                      fmtDouble(s[StallType::Dram], 2),
                      fmtDouble(s[StallType::Mshr], 2),
                      fmtDouble(s[StallType::Queue], 2),
                      fmtDouble(s.total(), 2),
                      fmtDouble(oracle_cpi, 2),
                      fmtDouble(s.total() / base_oracle, 2),
                      fmtDouble(oracle_cpi / base_oracle, 2)});
        }
        t.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "paper shape: step_factor scales (DRAM-latency "
                 "dominated, negligible MSHR/QUEUE until 48 warps); "
                 "compute_flux saturates ~32 warps (MSHR dominates); "
                 "invert_mapping is QUEUE-dominated via divergent "
                 "writes despite high L1 hit rates.\n";
    return 0;
}
