/**
 * @file
 * Section VI-D reproduction: simulation-time comparison between
 * GPUMech (input collection + interval algorithm + multi-warp model)
 * and the detailed timing simulator, using google-benchmark. The
 * paper reports a 97x average speedup; the shape requirement is a
 * large (>10x) advantage for the model, growing when a configuration
 * is re-evaluated with the representative warp already selected.
 */

#include <benchmark/benchmark.h>

#include "core/gpumech.hh"
#include "harness/experiment.hh"
#include "timing/gpu_timing.hh"
#include "workloads/workload.hh"

using namespace gpumech;

namespace
{

const std::vector<std::string> &
benchKernels()
{
    static const std::vector<std::string> kernels = {
        "srad_kernel1", "cfd_step_factor", "kmeans_invert_mapping",
        "vectorAdd", "sgemm_tiled"};
    return kernels;
}

/** Pre-generated traces so generation cost is outside the loop. */
const KernelTrace &
traceFor(const std::string &name)
{
    static std::map<std::string, KernelTrace> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        it = cache.emplace(name,
                           workloadByName(name).generate(
                               HardwareConfig::baseline()))
                 .first;
    }
    return it->second;
}

void
BM_DetailedTiming(benchmark::State &state)
{
    const std::string &name = benchKernels()[state.range(0)];
    const KernelTrace &kernel = traceFor(name);
    HardwareConfig config = HardwareConfig::baseline();
    for (auto _ : state) {
        GpuTiming sim(kernel, config, SchedulingPolicy::RoundRobin);
        TimingStats stats = sim.run();
        benchmark::DoNotOptimize(stats.totalCycles);
    }
    state.SetLabel(name);
}

void
BM_GpuMechFull(benchmark::State &state)
{
    const std::string &name = benchKernels()[state.range(0)];
    const KernelTrace &kernel = traceFor(name);
    HardwareConfig config = HardwareConfig::baseline();
    for (auto _ : state) {
        GpuMechResult r = runGpuMech(kernel, config);
        benchmark::DoNotOptimize(r.cpi);
    }
    state.SetLabel(name);
}

void
BM_GpuMechReevaluate(benchmark::State &state)
{
    // Section VI-D: exploring a new hardware configuration reuses the
    // representative warp; only the cache simulation and its interval
    // profile rerun.
    const std::string &name = benchKernels()[state.range(0)];
    const KernelTrace &kernel = traceFor(name);
    HardwareConfig config = HardwareConfig::baseline();
    GpuMechProfiler profiler(kernel, config);
    HardwareConfig swept = config;
    swept.numMshrs = 64;
    for (auto _ : state) {
        GpuMechResult r = profiler.evaluateAt(
            swept, SchedulingPolicy::RoundRobin);
        benchmark::DoNotOptimize(r.cpi);
    }
    state.SetLabel(name);
}

} // namespace

BENCHMARK(BM_DetailedTiming)->DenseRange(0, 4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GpuMechFull)->DenseRange(0, 4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GpuMechReevaluate)->DenseRange(0, 4)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
