/**
 * @file
 * Binary trace format bench: ingestion speed and bytes on disk.
 *
 * Materializes the stress suite as on-disk trace files in all three
 * encodings (text, .gmt raw, .gmt varint) and measures, per kernel and
 * suite-wide:
 *
 *  1. load time — text parse vs binary mmap load via the same
 *     loadTraceFile entry point (format detected by content). The
 *     tentpole target is a >10x binary-over-text load speedup on the
 *     stress suite; every decoded trace is verified bit-identical to
 *     its source (canonical text serialization) before times count.
 *
 *  2. bytes on disk — text vs .gmt raw vs .gmt varint, with the
 *     varint delta encoding's reduction of the line-pool-dominated
 *     image called out.
 *
 *  3. cold-suite end-to-end — load + collect + profile + evaluate for
 *     the whole suite from text files vs from .gmt files, the shape of
 *     a batch service re-consuming archived traces. Model results are
 *     verified equal across formats before times are reported.
 *
 * Options: --reps N (timing repetitions, default 3; best-of is kept)
 *          --out FILE (JSON path, default BENCH_trace_format.json)
 *          --dir DIR (trace file directory, default a temp dir)
 */

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "gates.hh"

#include "common/args.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "core/gpumech.hh"
#include "trace/gmt_format.hh"
#include "trace/trace_io.hh"
#include "workloads/workload.hh"

using namespace gpumech;

namespace
{

using clock_type = std::chrono::steady_clock;

/** Best-of-@p reps wall-clock time of fn(), in milliseconds. */
template <typename Fn>
double
timeMs(unsigned reps, Fn &&fn)
{
    double best = 0.0;
    for (unsigned r = 0; r < reps; ++r) {
        auto t0 = clock_type::now();
        fn();
        double ms = std::chrono::duration<double, std::milli>(
                        clock_type::now() - t0)
                        .count();
        if (r == 0 || ms < best)
            best = ms;
    }
    return best;
}

std::uint64_t
fileBytes(const std::string &path)
{
    return static_cast<std::uint64_t>(
        std::filesystem::file_size(path));
}

/** Load + full single-kernel model evaluation (the cold-suite body). */
GpuMechResult
coldEvaluate(const std::string &path, const HardwareConfig &config)
{
    Result<KernelTrace> kernel = loadTraceFile(path);
    if (!kernel.ok())
        fatal(msg("cold load of ", path, " failed: ",
                  kernel.status().toString()));
    return runGpuMech(kernel.value(), config, GpuMechOptions{});
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    unsigned reps = args.getUint("reps", 3);
    std::string out_path = args.get("out", "BENCH_trace_format.json");
    std::string dir = args.get("dir", "");
    if (dir.empty()) {
        dir = (std::filesystem::temp_directory_path() /
               "gpumech_bench_gmt")
                  .string();
    }
    std::filesystem::create_directories(dir);

    std::cout << "=== Binary trace format: ingestion + size bench ===\n";
    std::cout << "hardware threads: "
              << std::thread::hardware_concurrency() << ", reps: "
              << reps << " (best-of), dir: " << dir << "\n\n";

    JsonWriter json;
    json.field("bench", "ext_trace_format");
    json.field("hardware_threads",
               static_cast<std::uint64_t>(
                   std::thread::hardware_concurrency()));

    HardwareConfig config = HardwareConfig::baseline();
    std::vector<Workload> suite = stressWorkloads();

    // ---- materialize the suite in all three encodings --------------
    struct Files
    {
        std::string name;
        std::string text, gmt, gmtVarint;
        std::string canonical; //!< text serialization, the golden form
    };
    std::vector<Files> files;
    for (const Workload &w : suite) {
        KernelTrace kernel = w.generate(config);
        Files f;
        f.name = w.name;
        f.text = dir + "/" + w.name + ".txt";
        f.gmt = dir + "/" + w.name + ".gmt";
        f.gmtVarint = dir + "/" + w.name + ".varint.gmt";
        f.canonical = traceToString(kernel);
        writeTraceFile(f.text, kernel, false).orDie();
        writeTraceFile(f.gmt, kernel, false).orDie();
        writeTraceFile(f.gmtVarint, kernel, true).orDie();
        files.push_back(std::move(f));
    }

    // ---- 1. load time: text parse vs binary mmap load --------------
    Table load_table({"kernel", "text parse ms", "gmt load ms",
                      "varint load ms", "speedup"});
    json.beginObject("load");
    double text_sum = 0.0, gmt_sum = 0.0, varint_sum = 0.0;
    for (const Files &f : files) {
        // Correctness gate: all three loads must reproduce the
        // canonical serialization bit-identically.
        for (const std::string &path : {f.text, f.gmt, f.gmtVarint}) {
            Result<KernelTrace> k = loadTraceFile(path);
            if (!k.ok())
                fatal(msg("load of ", path, " failed: ",
                          k.status().toString()));
            if (traceToString(k.value()) != f.canonical)
                fatal(msg("load of ", path,
                          " diverged from the canonical trace"));
        }
        volatile std::uint64_t sink = 0;
        double text_ms = timeMs(reps, [&] {
            sink = sink +
                   loadTraceFile(f.text).valueOrDie().totalInsts();
        });
        double gmt_ms = timeMs(reps, [&] {
            sink = sink +
                   loadTraceFile(f.gmt).valueOrDie().totalInsts();
        });
        double varint_ms = timeMs(reps, [&] {
            sink = sink +
                   loadTraceFile(f.gmtVarint).valueOrDie().totalInsts();
        });
        load_table.addRow({f.name, fmtDouble(text_ms, 2),
                           fmtDouble(gmt_ms, 2),
                           fmtDouble(varint_ms, 2),
                           fmtDouble(text_ms / gmt_ms, 1)});
        json.beginObject(f.name);
        json.field("text_parse_ms", text_ms);
        json.field("gmt_load_ms", gmt_ms);
        json.field("gmt_varint_load_ms", varint_ms);
        json.field("speedup", text_ms / gmt_ms);
        json.endObject();
        text_sum += text_ms;
        gmt_sum += gmt_ms;
        varint_sum += varint_ms;
    }
    double load_speedup = text_sum / gmt_sum;
    json.field("suite_text_parse_ms", text_sum);
    json.field("suite_gmt_load_ms", gmt_sum);
    json.field("suite_gmt_varint_load_ms", varint_sum);
    json.field("suite_speedup", load_speedup);
    // Format gate, not a thread-scaling one: binary-over-text load
    // speed is algorithmic, so it holds at any thread count.
    json.field("load_speedup_gate", gateVerdict(load_speedup >= 10.0));
    json.endObject();

    std::cout << "-- trace load (stress suite, best-of-" << reps
              << ") --\n";
    load_table.print(std::cout);
    std::cout << "suite: text parse " << fmtDouble(text_sum, 1)
              << " ms vs .gmt load " << fmtDouble(gmt_sum, 1)
              << " ms (" << fmtDouble(load_speedup, 1)
              << "x; varint " << fmtDouble(varint_sum, 1)
              << " ms)\n\n";

    // ---- 2. bytes on disk ------------------------------------------
    Table size_table({"kernel", "text B", "gmt B", "varint B",
                      "gmt/text", "varint/text"});
    json.beginObject("size");
    std::uint64_t tb = 0, gb = 0, vb = 0;
    for (const Files &f : files) {
        std::uint64_t t = fileBytes(f.text);
        std::uint64_t g = fileBytes(f.gmt);
        std::uint64_t v = fileBytes(f.gmtVarint);
        size_table.addRow(
            {f.name, std::to_string(t), std::to_string(g),
             std::to_string(v),
             fmtDouble(static_cast<double>(g) / t, 2),
             fmtDouble(static_cast<double>(v) / t, 2)});
        json.beginObject(f.name);
        json.field("text_bytes", t);
        json.field("gmt_bytes", g);
        json.field("gmt_varint_bytes", v);
        json.endObject();
        tb += t;
        gb += g;
        vb += v;
    }
    json.field("suite_text_bytes", tb);
    json.field("suite_gmt_bytes", gb);
    json.field("suite_gmt_varint_bytes", vb);
    json.endObject();

    std::cout << "-- bytes on disk --\n";
    size_table.print(std::cout);
    std::cout << "suite: text " << tb << " B, gmt " << gb
              << " B (" << fmtDouble(static_cast<double>(gb) / tb, 2)
              << "x), varint " << vb << " B ("
              << fmtDouble(static_cast<double>(vb) / tb, 2)
              << "x)\n\n";

    // ---- 3. cold-suite end-to-end ----------------------------------
    // Single-threaded so the load/parse share of the pipeline is not
    // masked by parallel collection.
    setDefaultJobs(1);
    // Model results must agree across formats before times count.
    for (const Files &f : files) {
        GpuMechResult a = coldEvaluate(f.text, config);
        GpuMechResult b = coldEvaluate(f.gmt, config);
        if (a.cpi != b.cpi || a.ipc != b.ipc)
            fatal(msg("model outputs diverged across formats on ",
                      f.name));
    }
    double cold_text_ms = timeMs(reps, [&] {
        for (const Files &f : files)
            coldEvaluate(f.text, config);
    });
    double cold_gmt_ms = timeMs(reps, [&] {
        for (const Files &f : files)
            coldEvaluate(f.gmt, config);
    });
    setDefaultJobs(0);
    double cold_speedup = cold_text_ms / cold_gmt_ms;
    json.beginObject("cold_suite");
    json.field("text_ms", cold_text_ms);
    json.field("gmt_ms", cold_gmt_ms);
    json.field("speedup", cold_speedup);
    json.endObject();

    std::cout << "-- cold suite end-to-end (load + collect + profile "
                 "+ evaluate, 1 thread) --\n";
    std::cout << "text files:  " << fmtDouble(cold_text_ms, 1)
              << " ms\n.gmt files:  " << fmtDouble(cold_gmt_ms, 1)
              << " ms  (" << fmtDouble(cold_speedup, 2) << "x)\n";

    std::cout << "\nheadline: .gmt loads "
              << fmtDouble(load_speedup, 1)
              << "x faster than text parsing, stores "
              << fmtDouble(static_cast<double>(tb) / vb, 2)
              << "x fewer bytes with varint line pools, and speeds "
                 "the cold suite up "
              << fmtDouble(cold_speedup, 2) << "x on this machine.\n";

    std::ofstream out(out_path);
    if (!out)
        fatal(msg("cannot open ", out_path, " for writing"));
    out << json.finish() << "\n";
    std::cout << "\nwrote " << out_path << "\n";

    std::filesystem::remove_all(dir);
    return 0;
}
