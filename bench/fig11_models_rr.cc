/**
 * @file
 * Figure 11 reproduction: per-kernel relative performance error of
 * the five Table II models against detailed timing simulation, for
 * the round-robin scheduling policy at the Table I configuration,
 * over all 40 evaluation kernels.
 *
 * Paper shape: Naive_Interval and Markov_Chain overestimate heavily
 * for memory-divergent kernels; MT alone still misses contention;
 * MT_MSHR fixes most kernels; MT_MSHR_BAND (GPUMech) additionally
 * fixes write-heavy kernels; ~75% of kernels land below 20% error and
 * the GPUMech average error is in the low tens of percent.
 */

#include <iostream>

#include "common/stats.hh"
#include "common/args.hh"
#include "common/thread_pool.hh"
#include "common/table.hh"
#include "harness/experiment.hh"

using namespace gpumech;

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    if (args.has("jobs"))
        setDefaultJobs(args.getUint("jobs", 0));
    bool verbose = args.has("verbose") || args.has("v");
    HardwareConfig config = HardwareConfig::baseline();
    std::cout << "=== Figure 11: model comparison, round-robin ===\n";
    std::cout << "config: " << config.summary() << "\n\n";

    auto evals = evaluateSuite(evaluationWorkloads(), config,
                               SchedulingPolicy::RoundRobin,
                               allModels(), verbose);

    Table t({"kernel", "oracle CPI", "Naive", "Markov", "MT",
             "MT_MSHR", "GPUMech"});
    for (const auto &e : evals) {
        t.addRow({e.kernel,
                  fmtDouble(e.oracleCpi, 2),
                  fmtPercent(e.error(ModelKind::NaiveInterval), 0),
                  fmtPercent(e.error(ModelKind::MarkovChain), 0),
                  fmtPercent(e.error(ModelKind::MT), 0),
                  fmtPercent(e.error(ModelKind::MT_MSHR), 0),
                  fmtPercent(e.error(ModelKind::MT_MSHR_BAND), 1)});
    }
    if (args.has("csv")) {
        t.printCsv(std::cout);
    } else {
        t.print(std::cout);
    }

    std::cout << "\nAverage error per model:\n";
    for (ModelKind kind : allModels()) {
        std::cout << "  " << toString(kind) << ": "
                  << fmtPercent(averageError(evals, kind)) << "\n";
    }
    std::cout << "\nKernels with <20% error:\n";
    for (ModelKind kind :
         {ModelKind::MarkovChain, ModelKind::MT_MSHR_BAND}) {
        std::cout << "  " << toString(kind) << ": "
                  << fmtPercent(fractionWithin(evals, kind, 0.20))
                  << "\n";
    }
    std::cout << "\npaper: GPUMech avg 13.2% (RR), Markov_Chain avg "
                 "62.9%; 75% of kernels <20% (GPUMech) vs 50% "
                 "(Markov_Chain).\n";
    return 0;
}
