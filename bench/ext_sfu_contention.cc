/**
 * @file
 * Extension experiment: SFU structural contention.
 *
 * Section IV-B of the paper notes that the queuing-delay approach
 * "can be generalized to model other components with resource
 * contention problems, such as the special functional unit (SFU)" and
 * leaves it as future work. This bench implements that future work:
 * the oracle gains an SFU that an SFU warp-instruction occupies for
 * warpSize / sfuLanes cycles, and the model gains a matching
 * steady-state contention term (ContentionResult::sfuCpi).
 *
 * Expected shape: with a balanced SFU (32 lanes) both model variants
 * agree; as lanes shrink, the base GPUMech underestimates CPI on
 * SFU-heavy kernels while GPUMech+SFU tracks the oracle.
 */

#include <iostream>

#include "common/stats.hh"
#include "common/table.hh"
#include "harness/experiment.hh"
#include "timing/gpu_timing.hh"

using namespace gpumech;

int
main()
{
    std::cout << "=== Extension: SFU structural contention ===\n\n";

    const std::vector<std::string> kernels = {
        "micro_sfu_heavy", "mri_q_computeQ", "blackscholes",
        "montecarlo", "tpacf_gen_hists"};
    const std::vector<std::uint32_t> lane_counts = {32, 8, 4};

    Table t({"kernel", "SFU lanes", "oracle CPI", "GPUMech err",
             "GPUMech+SFU err", "model SFU CPI"});
    std::map<std::uint32_t, std::vector<double>> base_err, ext_err;

    for (const auto &name : kernels) {
        const Workload &workload = workloadByName(name);
        for (std::uint32_t lanes : lane_counts) {
            HardwareConfig config = HardwareConfig::baseline();
            config.sfuLanes = lanes;
            KernelTrace kernel = workload.generate(config);

            GpuTiming oracle(kernel, config,
                             SchedulingPolicy::RoundRobin);
            double oracle_ipc = 1.0 / oracle.run().cpi();

            GpuMechProfiler profiler(kernel, config);
            GpuMechResult base = profiler.evaluate(
                SchedulingPolicy::RoundRobin,
                ModelLevel::MT_MSHR_BAND, false);
            GpuMechResult ext = profiler.evaluate(
                SchedulingPolicy::RoundRobin,
                ModelLevel::MT_MSHR_BAND, true);

            double be = relativeError(base.ipc, oracle_ipc);
            double ee = relativeError(ext.ipc, oracle_ipc);
            base_err[lanes].push_back(be);
            ext_err[lanes].push_back(ee);
            t.addRow({name, std::to_string(lanes),
                      fmtDouble(1.0 / oracle_ipc, 2), fmtPercent(be),
                      fmtPercent(ee),
                      fmtDouble(ext.contention.sfuCpi, 2)});
        }
    }
    t.print(std::cout);

    std::cout << "\nAverage error on SFU-heavy kernels:\n";
    for (std::uint32_t lanes : lane_counts) {
        std::cout << "  " << lanes << " lanes: GPUMech "
                  << fmtPercent(mean(base_err[lanes]))
                  << " -> GPUMech+SFU "
                  << fmtPercent(mean(ext_err[lanes])) << "\n";
    }
    std::cout << "\nexpected shape: identical at 32 lanes (balanced "
                 "design); the +SFU variant wins as lanes shrink.\n";
    return 0;
}
