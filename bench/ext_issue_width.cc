/**
 * @file
 * Extension experiment: issue-width scaling.
 *
 * Table I fixes the issue width at 1 warp-instruction/cycle, but the
 * interval model is parameterized by the issue rate throughout
 * (Eq. 4, 7, 9), so wider cores are a design-space axis the model
 * supports for free. This bench checks that the model keeps tracking
 * the oracle when both move to dual- and quad-issue cores.
 *
 * Expected shape: compute-bound kernels speed up with width until
 * dependencies bind; memory-bound kernels do not (their bottleneck is
 * the memory system); model error stays in the same band as width 1.
 */

#include <iostream>

#include "common/stats.hh"
#include "common/table.hh"
#include "harness/experiment.hh"
#include "timing/gpu_timing.hh"

using namespace gpumech;

int
main()
{
    std::cout << "=== Extension: issue-width scaling ===\n\n";

    const std::vector<std::string> kernels = {
        "micro_compute_chain", "vectorAdd", "sgemm_tiled",
        "hotspot_calculate_temp", "srad_kernel1",
        "kmeans_invert_mapping"};

    Table t({"kernel", "width", "oracle CPI", "model CPI", "error"});
    std::map<std::uint32_t, std::vector<double>> errors;
    for (const auto &name : kernels) {
        const Workload &workload = workloadByName(name);
        for (std::uint32_t width : {1u, 2u, 4u}) {
            HardwareConfig config =
                HardwareConfig::baseline().withIssueWidth(width);
            KernelTrace kernel = workload.generate(config);

            GpuTiming oracle(kernel, config,
                             SchedulingPolicy::RoundRobin);
            double oracle_cpi = oracle.run().cpi();
            GpuMechResult model =
                runGpuMech(kernel, config, GpuMechOptions{});
            double err =
                relativeError(model.ipc, 1.0 / oracle_cpi);
            errors[width].push_back(err);
            t.addRow({name, std::to_string(width),
                      fmtDouble(oracle_cpi, 3),
                      fmtDouble(model.cpi, 3), fmtPercent(err)});
        }
    }
    t.print(std::cout);

    std::cout << "\nAverage model error per issue width:\n";
    for (std::uint32_t width : {1u, 2u, 4u}) {
        std::cout << "  width " << width << ": "
                  << fmtPercent(mean(errors[width])) << "\n";
    }
    std::cout << "\nexpected shape: compute-bound kernels approach "
                 "CPI 1/width; contention-bound kernels barely move; "
                 "model error stays in the width-1 band.\n";
    return 0;
}
