/**
 * @file
 * Gate-verdict helpers shared by the bench/ext_* writers.
 *
 * Every BENCH_*.json records its gates as "pass" / "fail" / "skipped"
 * strings so downstream tooling never has to re-derive a verdict from
 * raw numbers. A thread-scaling gate (t4/t8 speedup, multi-client
 * throughput) is vacuous on a 1-hardware-thread machine: it is
 * recorded as "skipped", never "pass", so a single-core CI runner
 * cannot launder a meaningless measurement into a green gate.
 * Algorithmic gates (drift bounds, format-load speedups) hold at any
 * thread count and always record pass/fail.
 */

#pragma once

#include <thread>

namespace gpumech
{

inline const char *
gateVerdict(bool pass)
{
    return pass ? "pass" : "fail";
}

/** Verdict for a gate whose claim only holds with real parallelism. */
inline const char *
threadScalingGate(bool pass)
{
    if (std::thread::hardware_concurrency() <= 1)
        return "skipped";
    return gateVerdict(pass);
}

} // namespace gpumech
