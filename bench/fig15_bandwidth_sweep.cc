/**
 * @file
 * Figure 15 reproduction: average model error with {64, 128, 192,
 * 256} GB/s DRAM bandwidth, round-robin policy, over all evaluation
 * kernels.
 *
 * Paper shape: the gap between MT_MSHR_BAND and the other models is
 * largest at low bandwidth (more DRAM queuing); at 64 GB/s even
 * GPUMech's error rises (26.1% in the paper) while it stays below
 * ~18% elsewhere.
 */

#include <iostream>

#include "common/args.hh"
#include "common/thread_pool.hh"
#include "harness/sweep.hh"

using namespace gpumech;

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    if (args.has("jobs"))
        setDefaultJobs(args.getUint("jobs", 0));
    bool verbose = args.has("verbose") || args.has("v");
    std::cout << "=== Figure 15: error vs DRAM bandwidth (RR) ===\n\n";

    std::vector<SweepPoint> points;
    for (double bw : {64.0, 128.0, 192.0, 256.0}) {
        HardwareConfig config = HardwareConfig::baseline();
        config.dramBandwidthGBs = bw;
        points.push_back(
            {std::to_string(static_cast<int>(bw)) + " GB/s", config});
    }

    SweepResult result = runSweep(evaluationWorkloads(), points,
                                  SchedulingPolicy::RoundRobin, verbose);
    if (args.has("csv")) {
        printSweepCsv(std::cout, result);
        return 0;
    }
    printSweep(std::cout, result);

    std::cout << "\npaper shape: all models improve with more "
                 "bandwidth; MT_MSHR_BAND dominates, with its largest "
                 "error at 64 GB/s.\n";
    return 0;
}
