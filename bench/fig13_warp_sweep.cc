/**
 * @file
 * Figure 13 reproduction: average model error with {8, 16, 32, 48}
 * warps per core, round-robin policy, over all evaluation kernels.
 *
 * Paper shape: models without resource-contention modeling
 * (Naive_Interval, Markov_Chain, MT) degrade as warps increase
 * (contention grows); MT_MSHR and MT_MSHR_BAND stay flat-to-low, and
 * GPUMech's error is highest at the lowest warp count (more
 * multithreading variation).
 */

#include <iostream>

#include "common/args.hh"
#include "common/thread_pool.hh"
#include "harness/sweep.hh"

using namespace gpumech;

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    if (args.has("jobs"))
        setDefaultJobs(args.getUint("jobs", 0));
    bool verbose = args.has("verbose") || args.has("v");
    std::cout << "=== Figure 13: error vs warps per core (RR) ===\n\n";

    std::vector<SweepPoint> points;
    for (std::uint32_t warps : {8u, 16u, 32u, 48u}) {
        HardwareConfig config = HardwareConfig::baseline();
        config.warpsPerCore = warps;
        points.push_back({std::to_string(warps) + " warps", config});
    }

    SweepResult result = runSweep(evaluationWorkloads(), points,
                                  SchedulingPolicy::RoundRobin, verbose);
    if (args.has("csv")) {
        printSweepCsv(std::cout, result);
        return 0;
    }
    printSweep(std::cout, result);

    std::cout << "\npaper shape: errors of Naive/Markov/MT grow with "
                 "warp count; MT_MSHR_BAND stays low (13.2% at 32 "
                 "warps).\n";
    return 0;
}
