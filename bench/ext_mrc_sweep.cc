/**
 * @file
 * MRC fast-path bench: one-pass reuse-distance profiling vs per-cell
 * functional re-simulation on an MSHR-fixed cache-geometry sweep.
 *
 * For every micro-suite kernel, an 8x12 L1/L2-size grid is evaluated
 * two ways and timed end to end (profiling included):
 *
 *   rerun  profile once at the base configuration, then evaluateAt()
 *          per cell — each distinct cache geometry re-runs the
 *          functional cache simulation (the pre-MRC engine, and still
 *          the --sweep-mode=rerun reference);
 *   mrc    collect one reuse-distance profile, then evaluateAt() per
 *          cell — each geometry is derived from the profile in
 *          O(histogram) time (--sweep-mode=mrc).
 *
 * Reported per kernel and for the suite: wall time of both paths, the
 * speedup, and the per-cell model-CPI drift of the MRC path against
 * the rerun reference (max over cells is the headline accuracy
 * number). A SHARDS sampling-rate ablation (rate 0.1) reports how far
 * sampled profiles drift. MSHRs and every non-cache axis stay fixed,
 * so the comparison isolates the cache-geometry work.
 *
 * Gates (BENCH_mrc.json): suite_speedup >= 5, suite_max_drift <= 0.02.
 *
 * Options: --reps N (timing repetitions, default 3; best-of is kept)
 *          --out FILE (JSON path, default BENCH_mrc.json)
 */

#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "collector/mrc_collector.hh"
#include "gates.hh"

#include "common/args.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "core/gpumech.hh"
#include "workloads/workload.hh"

using namespace gpumech;

namespace
{

using clock_type = std::chrono::steady_clock;

/** Best-of-@p reps wall-clock time of fn(), in milliseconds. */
template <typename Fn>
double
timeMs(unsigned reps, Fn &&fn)
{
    double best = 0.0;
    for (unsigned r = 0; r < reps; ++r) {
        auto t0 = clock_type::now();
        fn();
        double ms = std::chrono::duration<double, std::milli>(
                        clock_type::now() - t0)
                        .count();
        if (r == 0 || ms < best)
            best = ms;
    }
    return best;
}

/** One labeled cache-geometry cell. */
struct Cell
{
    std::string label;
    std::uint32_t l1Kb;
    std::uint32_t l2Kb;
};

std::vector<Cell>
geometryGrid()
{
    std::vector<Cell> cells;
    for (std::uint32_t l1 : {1u, 2u, 3u, 4u, 6u, 8u, 12u, 16u}) {
        for (std::uint32_t l2 :
             {4u, 6u, 8u, 12u, 16u, 24u, 32u, 48u, 64u, 96u, 128u,
              192u}) {
            cells.push_back(Cell{msg("l1-", l1, "k/l2-", l2, "k"), l1,
                                 l2});
        }
    }
    return cells;
}

HardwareConfig
cellConfig(const HardwareConfig &base, const Cell &cell)
{
    HardwareConfig config = base;
    config.l1SizeBytes = cell.l1Kb * 1024;
    config.l2SizeBytes = cell.l2Kb * 1024;
    return config;
}

/** Full-model CPI at every cell through the rerun path (one profile at
 *  base, functional re-collection per geometry). */
std::vector<double>
sweepRerun(const KernelTrace &kernel, const HardwareConfig &base,
           const std::vector<Cell> &cells)
{
    GpuMechProfiler profiler(kernel, base);
    std::vector<double> cpis;
    cpis.reserve(cells.size());
    for (const Cell &cell : cells) {
        cpis.push_back(profiler
                           .evaluateAt(cellConfig(base, cell),
                                       SchedulingPolicy::RoundRobin)
                           .cpi);
    }
    return cpis;
}

/** Full-model CPI at every cell through the MRC path (one
 *  reuse-distance profile, derivation per geometry). */
std::vector<double>
sweepMrc(const KernelTrace &kernel, const HardwareConfig &base,
         const std::vector<Cell> &cells, double rate)
{
    auto profile = std::make_shared<const MrcProfile>(
        collectMrcProfile(kernel, base, rate));
    GpuMechProfiler profiler(kernel, base, RepSelection::Clustering, 2,
                             1, nullptr, profile);
    std::vector<double> cpis;
    cpis.reserve(cells.size());
    for (const Cell &cell : cells) {
        cpis.push_back(profiler
                           .evaluateAt(cellConfig(base, cell),
                                       SchedulingPolicy::RoundRobin)
                           .cpi);
    }
    return cpis;
}

double
relDrift(double mrc, double rerun)
{
    return rerun > 0.0 ? std::abs(mrc - rerun) / rerun : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    unsigned reps = args.getUint("reps", 3);
    std::string out_path = args.get("out", "BENCH_mrc.json");

    // Cache-sensitive regime: few warps so memory latency shows in the
    // CPI, and the small per-core footprints actually fit (or miss) in
    // the swept kilobyte-scale geometries. MSHRs and every other
    // non-cache parameter stay at baseline across all cells.
    HardwareConfig base = HardwareConfig::baseline();
    base.numCores = 2;
    base.warpsPerCore = 4;

    const std::vector<Cell> cells = geometryGrid();
    const std::vector<Workload> &suite = microWorkloads();

    std::cout << "=== MRC fast path: cache-geometry sweep bench ===\n";
    std::cout << "hardware threads: "
              << std::thread::hardware_concurrency() << ", reps: "
              << reps << " (best-of), grid: " << cells.size()
              << " cells (L1 1-16 KB x L2 4-192 KB), MSHRs fixed at "
              << base.numMshrs << "\n\n";

    JsonWriter json;
    json.field("bench", "ext_mrc_sweep");
    json.field("hardware_threads",
               static_cast<std::uint64_t>(
                   std::thread::hardware_concurrency()));
    json.field("grid_cells", static_cast<std::uint64_t>(cells.size()));
    json.field("kernels", static_cast<std::uint64_t>(suite.size()));

    Table t({"kernel", "rerun ms", "mrc ms", "speedup", "max drift"});
    double rerun_sum = 0.0, mrc_sum = 0.0;
    double suite_max_drift = 0.0;
    std::string worst_cell;
    json.beginObject("kernels_detail");
    for (const Workload &w : suite) {
        KernelTrace kernel = w.generate(base);

        std::vector<double> rerun_cpis = sweepRerun(kernel, base, cells);
        std::vector<double> mrc_cpis =
            sweepMrc(kernel, base, cells, 1.0);

        double max_drift = 0.0;
        json.beginObject(w.name);
        json.beginObject("cells");
        for (std::size_t i = 0; i < cells.size(); ++i) {
            double drift = relDrift(mrc_cpis[i], rerun_cpis[i]);
            json.beginObject(cells[i].label);
            json.field("rerun_cpi", rerun_cpis[i]);
            json.field("mrc_cpi", mrc_cpis[i]);
            json.field("drift", drift);
            json.endObject();
            if (drift > max_drift)
                max_drift = drift;
            if (drift > suite_max_drift) {
                suite_max_drift = drift;
                worst_cell = msg(w.name, " @ ", cells[i].label);
            }
        }
        json.endObject();

        double rerun_ms =
            timeMs(reps, [&] { sweepRerun(kernel, base, cells); });
        double mrc_ms =
            timeMs(reps, [&] { sweepMrc(kernel, base, cells, 1.0); });

        t.addRow({w.name, fmtDouble(rerun_ms, 2), fmtDouble(mrc_ms, 2),
                  fmtDouble(rerun_ms / mrc_ms, 2),
                  fmtPercent(max_drift)});
        json.field("rerun_ms", rerun_ms);
        json.field("mrc_ms", mrc_ms);
        json.field("speedup", rerun_ms / mrc_ms);
        json.field("max_drift", max_drift);
        json.endObject();
        rerun_sum += rerun_ms;
        mrc_sum += mrc_ms;
    }
    json.endObject();

    double suite_speedup = rerun_sum / mrc_sum;
    json.field("suite_rerun_ms", rerun_sum);
    json.field("suite_mrc_ms", mrc_sum);
    json.field("suite_speedup", suite_speedup);
    json.field("suite_max_drift", suite_max_drift);
    json.field("suite_max_drift_cell", worst_cell);
    // Both sweep paths are serial, so the 5x claim is algorithmic
    // (one reuse-distance profile vs per-cell re-simulation) and the
    // gate holds at any thread count -- it is never skipped.
    json.field("speedup_gate", gateVerdict(suite_speedup >= 5.0));
    json.field("drift_gate", gateVerdict(suite_max_drift <= 0.02));

    t.print(std::cout);
    std::cout << "\nsuite: " << fmtDouble(rerun_sum, 1)
              << " ms rerun vs " << fmtDouble(mrc_sum, 1) << " ms mrc ("
              << fmtDouble(suite_speedup, 2) << "x), max CPI drift "
              << fmtPercent(suite_max_drift) << " (" << worst_cell
              << ")\n\n";

    // ---- SHARDS sampling-rate ablation ------------------------------
    // Drift vs the rerun reference when only 1 line in 10 is profiled.
    // The micro kernels' footprints are small, so sampling is noisy
    // here — this bounds the worst case, production traces fare better.
    std::cout << "-- sampling ablation (rate 0.1 vs rerun) --\n";
    Table st({"kernel", "mrc ms", "max drift"});
    json.beginObject("rate_ablation");
    json.field("rate", 0.1);
    double sampled_sum = 0.0, sampled_max_drift = 0.0;
    json.beginObject("kernels_detail");
    for (const Workload &w : suite) {
        KernelTrace kernel = w.generate(base);
        std::vector<double> rerun_cpis = sweepRerun(kernel, base, cells);
        std::vector<double> mrc_cpis =
            sweepMrc(kernel, base, cells, 0.1);
        double max_drift = 0.0;
        for (std::size_t i = 0; i < cells.size(); ++i)
            max_drift = std::max(
                max_drift, relDrift(mrc_cpis[i], rerun_cpis[i]));
        double mrc_ms =
            timeMs(reps, [&] { sweepMrc(kernel, base, cells, 0.1); });
        st.addRow({w.name, fmtDouble(mrc_ms, 2),
                   fmtPercent(max_drift)});
        json.beginObject(w.name);
        json.field("mrc_ms", mrc_ms);
        json.field("max_drift", max_drift);
        json.endObject();
        sampled_sum += mrc_ms;
        sampled_max_drift = std::max(sampled_max_drift, max_drift);
    }
    json.endObject();
    json.field("suite_mrc_ms", sampled_sum);
    json.field("suite_max_drift", sampled_max_drift);
    json.endObject();
    st.print(std::cout);
    std::cout << "suite: " << fmtDouble(sampled_sum, 1)
              << " ms at rate 0.1 (" << fmtDouble(
                     rerun_sum / sampled_sum, 2)
              << "x vs rerun), max drift "
              << fmtPercent(sampled_max_drift) << "\n";

    std::cout << "\nheadline: one reuse-distance profile prices the "
              << cells.size() << "-cell geometry grid "
              << fmtDouble(suite_speedup, 2)
              << "x faster than per-cell functional re-simulation, "
                 "with max model-CPI drift "
              << fmtPercent(suite_max_drift) << " ("
              << (suite_speedup >= 5.0 && suite_max_drift <= 0.02
                      ? "gates PASS"
                      : "gates FAIL")
              << ": speedup >= 5x, drift <= 2%).\n";

    std::ofstream out(out_path);
    if (!out)
        fatal(msg("cannot open ", out_path, " for writing"));
    out << json.finish() << "\n";
    std::cout << "\nwrote " << out_path << "\n";
    return 0;
}
