/**
 * @file
 * Guided design-space exploration bench: `tune` vs exhaustive search
 * on the ext_mrc_sweep cache-geometry grid.
 *
 * For every micro kernel, price all 96 L1 x L2 geometry cells
 * exhaustively through the shared reuse-distance profile (the same
 * evaluation path tune uses), then run the coordinate-descent tuner
 * over the same two ladders and compare:
 *
 *  1. optimum — tune's best CPI must land within 2% of the
 *     exhaustive 96-cell optimum;
 *  2. budget — tune must spend at most 1/5 of the exhaustive
 *     evaluation count doing it;
 *  3. explained — every Pareto-frontier point must carry a
 *     CPI-stack-delta explanation;
 *  4. repro — the report must be byte-identical at --jobs 1 and
 *     --jobs 8 (fresh sessions, same seed).
 *
 * All four gates are search-quality claims, not thread-scaling
 * claims, so they record pass/fail at any hardware_threads count.
 * Results go to stdout and BENCH_tune.json (see --out).
 *
 * Options: --out FILE (default BENCH_tune.json)
 */

#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "gates.hh"

#include "common/args.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "core/gpumech.hh"
#include "harness/tune.hh"
#include "workloads/workload.hh"

using namespace gpumech;

namespace
{

/** The ext_mrc_sweep geometry grid as two tune ladders. */
const std::vector<double> kL1Ladder = {1, 2, 3, 4, 6, 8, 12, 16};
const std::vector<double> kL2Ladder = {4,  6,  8,  12, 16,  24,
                                       32, 48, 64, 96, 128, 192};

TuneOptions
gridOptions(unsigned jobs)
{
    TuneOptions options;
    options.dims = {{"l1-kb", kL1Ladder}, {"l2-kb", kL2Ladder}};
    options.restarts = 1;
    options.seed = 1;
    options.jobs = jobs;
    return options;
}

/**
 * Exhaustive minimum CPI over the full grid, mirroring tune's
 * evaluation path exactly (shared reuse-distance profile at the base
 * trace shape, evaluateAt per cell).
 */
double
exhaustiveBestCpi(EvalSession &session, const Workload &w,
                  const HardwareConfig &base)
{
    ProfiledKernel pk = session.cache.mrcProfiler(w, base, 1.0);
    double best = std::numeric_limits<double>::infinity();
    for (double l1 : kL1Ladder) {
        for (double l2 : kL2Ladder) {
            HardwareConfig config = base;
            config.l1SizeBytes = static_cast<std::uint32_t>(l1) * 1024;
            config.l2SizeBytes = static_cast<std::uint32_t>(l2) * 1024;
            config.validate().orDie();
            double cpi = pk.profiler
                             ->evaluateAt(config,
                                          SchedulingPolicy::RoundRobin,
                                          ModelLevel::MT_MSHR_BAND,
                                          false)
                             .cpi;
            if (cpi < best)
                best = cpi;
        }
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    std::string out_path = args.get("out", "BENCH_tune.json");

    HardwareConfig base = HardwareConfig::baseline();
    base.numCores = 2;
    base.warpsPerCore = 4;

    const std::vector<Workload> &suite = microWorkloads();
    const std::size_t grid_cells = kL1Ladder.size() * kL2Ladder.size();
    const double eval_budget =
        static_cast<double>(grid_cells) / 5.0;

    std::cout << "=== Guided design-space exploration: tune vs "
                 "exhaustive ===\n";
    std::cout << "hardware threads: "
              << std::thread::hardware_concurrency() << ", grid: "
              << grid_cells << " cells (L1 1-16 KB x L2 4-192 KB), "
              << "budget: " << eval_budget << " evaluations\n\n";

    JsonWriter json;
    json.field("bench", "ext_tune");
    json.field("hardware_threads",
               static_cast<std::uint64_t>(
                   std::thread::hardware_concurrency()));
    json.field("grid_cells", static_cast<std::uint64_t>(grid_cells));
    json.field("eval_budget", eval_budget);
    json.field("kernels", static_cast<std::uint64_t>(suite.size()));

    Table t({"kernel", "exhaustive cpi", "tune cpi", "gap", "evals",
             "frontier"});
    bool optimum_ok = true, budget_ok = true, explained_ok = true;
    bool repro_ok = true;
    double worst_gap = 0.0;
    std::uint64_t max_evals = 0;

    json.beginObject("kernels_detail");
    for (const Workload &w : suite) {
        EvalSession exhaustive_session;
        double best_cpi = exhaustiveBestCpi(exhaustive_session, w, base);

        EvalSession session;
        Result<TuneResult> run =
            runTune(session, w, base, gridOptions(1));
        run.status().orDie();
        const TuneResult &result = run.value();

        // Reproducibility: a fresh session at 8 workers must emit the
        // same report bytes the 1-worker run did.
        EvalSession session8;
        Result<TuneResult> run8 =
            runTune(session8, w, base, gridOptions(8));
        run8.status().orDie();
        bool identical =
            tuneResultToJson(result, w.name, gridOptions(1)) ==
            tuneResultToJson(run8.value(), w.name, gridOptions(8));

        double gap = result.best.cpi / best_cpi - 1.0;
        bool explained = !result.frontier.empty();
        for (const TunePoint &p : result.frontier) {
            if (p.explanation.text.empty())
                explained = false;
        }

        optimum_ok = optimum_ok && gap <= 0.02;
        budget_ok = budget_ok &&
                    static_cast<double>(result.evaluations) <=
                        eval_budget;
        explained_ok = explained_ok && explained;
        repro_ok = repro_ok && identical;
        worst_gap = std::max(worst_gap, gap);
        max_evals = std::max(
            max_evals,
            static_cast<std::uint64_t>(result.evaluations));

        t.addRow({w.name, fmtDouble(best_cpi, 4),
                  fmtDouble(result.best.cpi, 4), fmtPercent(gap),
                  msg(result.evaluations),
                  msg(result.frontier.size())});
        json.beginObject(w.name);
        json.field("exhaustive_best_cpi", best_cpi);
        json.field("tune_best_cpi", result.best.cpi);
        json.field("gap", gap);
        json.field("evaluations",
                   static_cast<std::uint64_t>(result.evaluations));
        json.field("frontier_points",
                   static_cast<std::uint64_t>(result.frontier.size()));
        json.field("jobs_identical", identical);
        json.endObject();
    }
    json.endObject();

    json.field("worst_gap", worst_gap);
    json.field("max_evaluations", max_evals);
    json.field("optimum_gate", gateVerdict(optimum_ok));
    json.field("budget_gate", gateVerdict(budget_ok));
    json.field("explained_gate", gateVerdict(explained_ok));
    json.field("repro_gate", gateVerdict(repro_ok));

    t.print(std::cout);
    bool all_ok = optimum_ok && budget_ok && explained_ok && repro_ok;
    std::cout << "\nheadline: coordinate descent recovers the "
              << grid_cells << "-cell optimum to within "
              << fmtPercent(worst_gap) << " using at most "
              << max_evals << " evaluations ("
              << (all_ok ? "gates PASS" : "gates FAIL")
              << ": gap <= 2%, evals <= " << eval_budget
              << ", frontier explained, jobs-reproducible).\n";

    std::ofstream out(out_path);
    if (!out)
        fatal(msg("cannot open ", out_path, " for writing"));
    out << json.finish() << "\n";
    std::cout << "wrote " << out_path << "\n";

    if (!all_ok)
        fatal("ext_tune gates failed");
    return 0;
}
