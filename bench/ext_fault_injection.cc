/**
 * @file
 * Extension experiment: price and prove the fault-isolation layer.
 *
 * The evaluation engine threads a per-kernel isolation frame through
 * every pipeline stage (deadline watchdog + deterministic fault
 * injection, see src/common/isolation.hh). This bench answers two
 * questions about that layer:
 *
 *  1. Overhead — a model-only stress suite is timed three ways:
 *     isolation off (default options), watchdog armed (a generous
 *     deadline, so every strided checkpoint reads the clock), and
 *     fully armed (deadline + a fault plan targeting a kernel that is
 *     not in the suite, so every stage checkpoint also takes the plan
 *     lock and misses). The armed runs must stay within ~1% of the
 *     baseline — isolation is meant to be always-on-able.
 *
 *  2. Containment — a randomized fault plan (seeded, deterministic)
 *     fails half the suite; the run must complete, fail exactly the
 *     planned kernels, and leave every survivor bit-identical to the
 *     clean run. Divergence is fatal.
 *
 * Results go to stdout and BENCH_fault_injection.json (--out FILE).
 * Options: --reps N (default 5, best-of) --seed N (default 7).
 */

#include <fstream>
#include <iostream>
#include <set>
#include <thread>
#include <string>
#include <vector>

#include "common/args.hh"
#include "common/isolation.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "harness/experiment.hh"
#include "workloads/workload.hh"

using namespace gpumech;

namespace
{

using clock_type = std::chrono::steady_clock;

/** Best-of-@p reps wall-clock time of fn(), in milliseconds. */
template <typename Fn>
double
timeMs(unsigned reps, Fn &&fn)
{
    double best = 0.0;
    for (unsigned r = 0; r < reps; ++r) {
        auto t0 = clock_type::now();
        fn();
        double ms = std::chrono::duration<double, std::milli>(
                        clock_type::now() - t0)
                        .count();
        if (r == 0 || ms < best)
            best = ms;
    }
    return best;
}

/** Stress suite: medium kernels covering every checkpointed stage. */
std::vector<Workload>
stressSuite()
{
    std::vector<Workload> suite;
    for (const char *name :
         {"srad_kernel1", "cfd_step_factor", "kmeans_invert_mapping",
          "vectorAdd", "sgemm_tiled", "spmv_jds"}) {
        suite.push_back(workloadByName(name));
    }
    return suite;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    unsigned reps = args.getUint("reps", 5);
    std::uint64_t seed = args.getUint("seed", 7);
    std::string out_path = args.get("out", "BENCH_fault_injection.json");

    std::cout << "=== Fault-isolation layer: overhead + containment ===\n";
    std::cout << "reps: " << reps << " (best-of), seed: " << seed
              << "\n\n";

    JsonWriter json;
    json.field("bench", "ext_fault_injection");
    json.field("seed", seed);
    json.field("hardware_threads",
               static_cast<std::uint64_t>(
                   std::thread::hardware_concurrency()));

    HardwareConfig config = HardwareConfig::baseline();
    std::vector<Workload> suite = stressSuite();

    // Uncached model-only prediction: the profiling/collection hot
    // loops (where the strided checkpoints live) dominate the time.
    auto run_once = [&](const IsolationOptions &isolation) {
        auto preds = predictSuite(suite, config, GpuMechOptions{}, 0,
                                  nullptr, isolation);
        for (const KernelPrediction &p : preds)
            p.status.orDie();
        return preds;
    };

    // ---- 1. overhead of the armed-but-idle layer -------------------
    IsolationOptions off;

    IsolationOptions watchdog;
    watchdog.kernelTimeoutMs = 10 * 60 * 1000; // generous: never fires

    FaultPlan miss_plan;
    miss_plan.add(
        FaultInjection{"kernel_not_in_this_suite", FaultSite::Parse, 1, 0});
    IsolationOptions armed;
    armed.kernelTimeoutMs = 10 * 60 * 1000;
    armed.faultPlan = &miss_plan;

    run_once(off); // warm up allocators and page cache
    double off_ms = timeMs(reps, [&] { run_once(off); });
    double watchdog_ms = timeMs(reps, [&] { run_once(watchdog); });
    double armed_ms = timeMs(reps, [&] { run_once(armed); });

    double watchdog_pct = (watchdog_ms / off_ms - 1.0) * 100.0;
    double armed_pct = (armed_ms / off_ms - 1.0) * 100.0;

    Table overhead({"isolation", "ms", "overhead"});
    overhead.addRow({"off", fmtDouble(off_ms, 2), "-"});
    overhead.addRow({"watchdog armed", fmtDouble(watchdog_ms, 2),
                     fmtDouble(watchdog_pct, 2) + "%"});
    overhead.addRow({"watchdog + fault plan", fmtDouble(armed_ms, 2),
                     fmtDouble(armed_pct, 2) + "%"});
    std::cout << "-- overhead: " << suite.size()
              << "-kernel model-only suite, uncached --\n";
    overhead.print(std::cout);

    json.beginObject("overhead");
    json.field("kernels", static_cast<std::uint64_t>(suite.size()));
    json.field("off_ms", off_ms);
    json.field("watchdog_ms", watchdog_ms);
    json.field("armed_ms", armed_ms);
    json.field("watchdog_pct", watchdog_pct);
    json.field("armed_pct", armed_pct);
    json.field("within_1pct", armed_pct < 1.0);
    json.endObject();

    // ---- 2. containment under a randomized fault schedule ----------
    auto clean = run_once(off);

    std::vector<std::string> targets;
    for (std::size_t i = 0; i < suite.size(); i += 2)
        targets.push_back(suite[i].name);
    FaultPlan chaos = FaultPlan::randomized(seed, targets);

    IsolationOptions chaotic;
    chaotic.faultPlan = &chaos;
    auto preds = predictSuite(suite, config, GpuMechOptions{}, 0,
                              nullptr, chaotic);

    std::set<std::string> planned(targets.begin(), targets.end());
    std::size_t failed = 0;
    for (std::size_t i = 0; i < preds.size(); ++i) {
        const KernelPrediction &p = preds[i];
        if (planned.count(p.kernel)) {
            if (p.ok())
                fatal(msg("planned fault on ", p.kernel,
                          " did not fire"));
            failed++;
        } else {
            if (!p.ok())
                fatal(msg("unplanned failure: ",
                          p.status.toString()));
            if (p.result.cpi != clean[i].result.cpi ||
                p.result.ipc != clean[i].result.ipc)
                fatal(msg("survivor ", p.kernel,
                          " diverged from the clean run"));
        }
    }
    std::cout << "\n-- containment: randomized plan over "
              << targets.size() << "/" << suite.size()
              << " kernels --\n";
    std::cout << "failed as planned: " << failed << ", survivors "
              << "bit-identical: yes\n";
    std::cout << failureSummary(preds) << "\n";

    json.beginObject("containment");
    json.field("planned_faults",
               static_cast<std::uint64_t>(targets.size()));
    json.field("fired", static_cast<std::uint64_t>(failed));
    json.field("survivors_identical", true);
    json.endObject();

    std::cout << "\nheadline: armed isolation costs "
              << fmtDouble(armed_pct, 2)
              << "% on the stress suite (budget: 1%); a randomized "
                 "fault plan fails only its targets and leaves "
                 "survivors bit-identical.\n";

    std::ofstream out(out_path);
    if (!out)
        fatal(msg("cannot open ", out_path, " for writing"));
    out << json.finish() << "\n";
    std::cout << "\nwrote " << out_path << "\n";
    return 0;
}
