/**
 * @file
 * Ablation of the Section IV-B claim that the contention model can be
 * shared between scheduling policies: "instruction orderings matter
 * only when the degree of contention is low". We run the oracle under
 * RR and GTO on every kernel and report how much the measured CPI
 * differs between policies, split by contention level, together with
 * GPUMech's (policy-independent) contention CPI.
 */

#include <iostream>

#include "common/stats.hh"
#include "common/table.hh"
#include "harness/experiment.hh"

using namespace gpumech;

int
main()
{
    HardwareConfig config = HardwareConfig::baseline();
    std::cout << "=== Ablation: contention model vs scheduling policy "
                 "===\n";
    std::cout << "config: " << config.summary() << "\n\n";

    Table t({"kernel", "oracle CPI (RR)", "oracle CPI (GTO)",
             "policy delta", "model contention CPI"});
    std::vector<double> deltas_low, deltas_high;

    for (const auto &workload : evaluationWorkloads()) {
        KernelTrace kernel = workload.generate(config);

        GpuTiming rr(kernel, config, SchedulingPolicy::RoundRobin);
        double cpi_rr = rr.run().cpi();
        GpuTiming gto(kernel, config,
                      SchedulingPolicy::GreedyThenOldest);
        double cpi_gto = gto.run().cpi();

        GpuMechResult model = runGpuMech(kernel, config, GpuMechOptions{});
        double delta = relativeError(cpi_gto, cpi_rr);

        bool high_contention = model.cpiContention > 1.0;
        (high_contention ? deltas_high : deltas_low).push_back(delta);

        t.addRow({workload.name, fmtDouble(cpi_rr, 2),
                  fmtDouble(cpi_gto, 2), fmtPercent(delta),
                  fmtDouble(model.cpiContention, 2)});
    }
    t.print(std::cout);

    std::cout << "\nMean |CPI(GTO) - CPI(RR)| / CPI(RR):\n";
    std::cout << "  low-contention kernels  (model contention <= 1 "
                 "CPI): "
              << fmtPercent(mean(deltas_low)) << "\n";
    std::cout << "  high-contention kernels (model contention >  1 "
                 "CPI): "
              << fmtPercent(mean(deltas_high)) << "\n";
    std::cout << "\npaper claim: when contention is high, scheduling "
                 "policy barely moves the queuing delays, so one "
                 "contention model serves both policies.\n";
    return 0;
}
