/**
 * @file
 * Ablation: cache replacement policy sensitivity.
 *
 * The paper fixes LRU caches (Table I). Because GPUMech's inputs come
 * from a functional simulation of the same caches, the model adapts
 * to any replacement policy automatically; this bench sweeps
 * LRU/FIFO/pseudo-random on cache-sensitive kernels and checks that
 * (a) the oracle's hit rates respond to the policy and (b) GPUMech's
 * error stays in its usual band under every policy.
 */

#include <iostream>

#include "common/stats.hh"
#include "common/table.hh"
#include "harness/experiment.hh"
#include "timing/gpu_timing.hh"

using namespace gpumech;

int
main()
{
    std::cout << "=== Ablation: cache replacement policy ===\n\n";

    const std::vector<std::string> kernels = {
        "kmeans_kernel_c", "leukocyte_dilate",
        "hotspot_calculate_temp", "stencil_block2d",
        "convolutionRows"};
    const std::vector<std::pair<std::uint32_t, std::string>> policies =
        {{0, "LRU"}, {1, "FIFO"}, {2, "Random"}};

    Table t({"kernel", "policy", "oracle CPI", "L1 hit rate",
             "GPUMech err"});
    std::map<std::string, std::vector<double>> errors;
    for (const auto &name : kernels) {
        const Workload &workload = workloadByName(name);
        for (const auto &[index, label] : policies) {
            HardwareConfig config = HardwareConfig::baseline();
            config.replacementPolicy = index;
            KernelTrace kernel = workload.generate(config);

            GpuTiming oracle(kernel, config,
                             SchedulingPolicy::RoundRobin);
            TimingStats s = oracle.run();
            double hit_rate = s.l1Accesses
                ? static_cast<double>(s.l1Hits) / s.l1Accesses
                : 0.0;

            GpuMechResult model =
                runGpuMech(kernel, config, GpuMechOptions{});
            double err = relativeError(model.ipc, 1.0 / s.cpi());
            errors[label].push_back(err);
            t.addRow({name, label, fmtDouble(s.cpi(), 2),
                      fmtPercent(hit_rate), fmtPercent(err)});
        }
    }
    t.print(std::cout);

    std::cout << "\nAverage GPUMech error per policy:\n";
    for (const auto &[index, label] : policies) {
        (void)index;
        std::cout << "  " << label << ": "
                  << fmtPercent(mean(errors[label])) << "\n";
    }
    std::cout << "\nexpected shape: hit rates shift with the policy "
                 "and GPUMech tracks the oracle under all three, "
                 "because its inputs are collected on the same "
                 "caches.\n";
    return 0;
}
