/**
 * @file
 * Ablation: cache replacement policy sensitivity.
 *
 * The paper fixes LRU caches (Table I). Because GPUMech's inputs come
 * from a functional simulation of the same caches, the model adapts
 * to any replacement policy automatically; this bench sweeps the full
 * policy zoo — LRU, FIFO, pseudo-random, and ARC — on cache-sensitive
 * kernels and checks that (a) the oracle's hit rates respond to the
 * policy and (b) GPUMech's error stays in its usual band under every
 * policy. Each policy row also reports whether the MRC fast path
 * (collector/mrc_collector.hh) models it exactly: LRU stack distances
 * are exact only for LRU; every other policy is served approximately
 * and flagged via CollectorResult::mrcApproximate.
 *
 * Kernels near DRAM saturation (rho ~= 1.0) used to straddle a
 * discontinuity in the Eq. 21-23 queuing term, where sub-percent
 * hit-rate differences between policies swung the model error; the
 * continuity clamp at kBandwidthRhoClamp (core/contention.hh)
 * removed that regime boundary, so policy deltas now move the model
 * smoothly even at saturation.
 *
 * Results go to stdout and BENCH_replacement_policy.json (see --out).
 */

#include <fstream>
#include <iostream>
#include <thread>

#include "common/args.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "harness/experiment.hh"
#include "timing/gpu_timing.hh"

using namespace gpumech;

namespace
{

struct Policy
{
    std::uint32_t index;
    const char *label;
    bool mrcExact; //!< LRU stack distances model it without error
};

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    std::string out_path =
        args.get("out", "BENCH_replacement_policy.json");

    std::cout << "=== Ablation: cache replacement policy ===\n\n";

    const std::vector<std::string> kernels = {
        "kmeans_kernel_c", "leukocyte_dilate",
        "hotspot_calculate_temp", "stencil_block2d",
        "convolutionRows"};
    const std::vector<Policy> policies = {{0, "LRU", true},
                                          {1, "FIFO", false},
                                          {2, "Random", false},
                                          {3, "ARC", false}};

    JsonWriter json;
    json.field("bench", "ablation_replacement_policy");
    json.field("hardware_threads",
               static_cast<std::uint64_t>(
                   std::thread::hardware_concurrency()));

    Table t({"kernel", "policy", "oracle CPI", "L1 hit rate",
             "GPUMech err"});
    std::map<std::string, std::vector<double>> errors;
    json.beginObject("kernels");
    for (const auto &name : kernels) {
        const Workload &workload = workloadByName(name);
        json.beginObject(name);
        for (const Policy &policy : policies) {
            HardwareConfig config = HardwareConfig::baseline();
            config.replacementPolicy = policy.index;
            KernelTrace kernel = workload.generate(config);

            GpuTiming oracle(kernel, config,
                             SchedulingPolicy::RoundRobin);
            TimingStats s = oracle.run();
            double hit_rate = s.l1Accesses
                ? static_cast<double>(s.l1Hits) / s.l1Accesses
                : 0.0;

            GpuMechResult model =
                runGpuMech(kernel, config, GpuMechOptions{});
            double err = relativeError(model.ipc, 1.0 / s.cpi());
            errors[policy.label].push_back(err);
            t.addRow({name, policy.label, fmtDouble(s.cpi(), 2),
                      fmtPercent(hit_rate), fmtPercent(err)});
            json.beginObject(policy.label);
            json.field("oracle_cpi", s.cpi());
            json.field("l1_hit_rate", hit_rate);
            json.field("model_error", err);
            json.endObject();
        }
        json.endObject();
    }
    json.endObject();
    t.print(std::cout);

    std::cout << "\nAverage GPUMech error per policy (MRC-exact "
                 "policies marked *):\n";
    json.beginObject("policy_summary");
    for (const Policy &policy : policies) {
        double avg = mean(errors[policy.label]);
        std::cout << "  " << policy.label
                  << (policy.mrcExact ? "*" : "") << ": "
                  << fmtPercent(avg) << "\n";
        json.beginObject(policy.label);
        json.field("avg_error", avg);
        json.field("mrc_exact", policy.mrcExact);
        json.endObject();
    }
    json.endObject();

    std::cout << "\nexpected shape: hit rates shift with the policy "
                 "and GPUMech tracks the oracle under all four, "
                 "because its inputs are collected on the same "
                 "caches. Only LRU is modeled exactly by the MRC fast "
                 "path; the others fall back to LRU stack distances "
                 "and set CollectorResult::mrcApproximate. Kernels "
                 "near DRAM saturation (stencil_block2d) stay smooth "
                 "across policies since the Eq. 21-23 queuing term "
                 "was clamped to be continuous at rho = 1.\n";

    std::ofstream out(out_path);
    if (!out)
        fatal(msg("cannot open ", out_path, " for writing"));
    out << json.finish() << "\n";
    std::cout << "\nwrote " << out_path << "\n";
    return 0;
}
