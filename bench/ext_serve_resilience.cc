/**
 * @file
 * Connection-supervisor resilience bench: multi-client throughput,
 * socket-path latency, chaos correctness, and drain behavior.
 *
 * Spins up the real supervisor (service/supervisor.hh) on a Unix
 * socket and drives it with raw socket clients:
 *
 *  1. warm handle baseline — direct EngineSession::handle p50 on the
 *     warm srad_kernel1 model request, the same measurement
 *     BENCH_serve.json's "warm" phase records (apples-to-apples
 *     anchor for the socket-path numbers);
 *  2. single connection — one synchronous client, full socket round
 *     trips (parse, admission, dispatch, reorder, write). Run as
 *     paired trials with phase 3 (single pass then multi pass, best
 *     pair reported) so both sides of the throughput comparison see
 *     the same machine conditions;
 *  3. multi client — 8 concurrent clients, each keeping a small
 *     window of requests in flight (the load the supervisor exists
 *     for); batched intake and delivery amortize per-request wakeups,
 *     so aggregate throughput must not fall below the synchronous
 *     single-connection rate (fatal otherwise). Per-request latency
 *     is measured send-to-response, so it includes the queueing
 *     delay contention causes;
 *  4. chaos — good clients verify every response (exactly one per
 *     request, own ids only, per-connection seq strictly increasing)
 *     while a garbage client, an oversized client, and a mid-stream
 *     disconnector misbehave alongside; any lost/duplicated/misrouted
 *     response is fatal;
 *  5. drain — requests parked behind an injected stall must all be
 *     answered across a drain request, then the socket must close.
 *
 * Results go to stdout and BENCH_serve_resilience.json (see --out).
 *
 * Options: --single N (single-connection requests, default 150)
 *          --per-client N (multi-client requests each, default 40)
 *          --out FILE (default BENCH_serve_resilience.json)
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "gates.hh"

#include "common/args.hh"
#include "common/json.hh"
#include "common/json_value.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "service/serve_loop.hh"
#include "service/supervisor.hh"

using namespace gpumech;

namespace
{

using clock_type = std::chrono::steady_clock;

constexpr int kMultiClients = 8;
constexpr std::size_t kChaosLineCap = 4096;

double
toMs(clock_type::duration d)
{
    return std::chrono::duration<double, std::milli>(d).count();
}

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    std::sort(sorted.begin(), sorted.end());
    std::size_t at = static_cast<std::size_t>(
        (sorted.size() - 1) * p / 100.0);
    return sorted[at];
}

/** Minimal blocking Unix-socket client with line-buffered reads. */
class Client
{
  public:
    explicit Client(const std::string &path)
    {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                      path.c_str());
        for (int attempt = 0; attempt < 500; ++attempt) {
            fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
            if (fd < 0)
                fatal("socket() failed");
            if (::connect(fd,
                          reinterpret_cast<const sockaddr *>(&addr),
                          sizeof(addr)) == 0)
                return;
            ::close(fd);
            fd = -1;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
        fatal(msg("cannot connect to ", path));
    }

    ~Client() { disconnect(); }

    void
    sendLine(const std::string &line)
    {
        std::string data = line + "\n";
        std::size_t off = 0;
        while (off < data.size()) {
            ssize_t n = ::send(fd, data.data() + off,
                               data.size() - off, MSG_NOSIGNAL);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                fatal("send() failed mid-request");
            }
            off += static_cast<std::size_t>(n);
        }
    }

    void
    sendRaw(const std::string &data)
    {
        ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    }

    /** Next line; false on EOF. */
    bool
    readLine(std::string &line)
    {
        for (;;) {
            std::size_t nl = buffer.find('\n');
            if (nl != std::string::npos) {
                line = buffer.substr(0, nl);
                buffer.erase(0, nl + 1);
                return true;
            }
            struct pollfd pfd = {fd, POLLIN, 0};
            if (::poll(&pfd, 1, 60000) <= 0)
                fatal("timed out waiting for a response line");
            char chunk[65536];
            ssize_t n = ::read(fd, chunk, sizeof chunk);
            if (n > 0) {
                buffer.append(chunk, static_cast<std::size_t>(n));
                continue;
            }
            if (n == 0)
                return false;
            if (errno != EINTR)
                fatal("read() failed");
        }
    }

    void
    disconnect()
    {
        if (fd >= 0)
            ::close(fd);
        fd = -1;
    }

  private:
    int fd = -1;
    std::string buffer;
};

const char *const kWarmRequest =
    R"({"cmd":"model","kernel":"srad_kernel1"})";

/** One synchronous request/response round trip; returns wall ms. */
double
roundTrip(Client &client, const std::string &request)
{
    auto t0 = clock_type::now();
    client.sendLine(request);
    std::string line;
    if (!client.readLine(line))
        fatal("connection closed mid round trip");
    double ms = toMs(clock_type::now() - t0);
    Result<JsonValue> doc = parseJson(line);
    if (!doc.ok() || !doc.value().find("ok")->boolean())
        fatal(msg("round trip failed: ", line));
    return ms;
}

/** Chaos-phase verification state for one good client. */
struct ChaosTally
{
    std::atomic<std::uint64_t> responses{0};
    std::atomic<std::uint64_t> violations{0};
};

void
chaosGoodClient(const std::string &path, int index, int requests,
                ChaosTally &tally)
{
    Client client(path);
    for (int r = 0; r < requests; ++r) {
        std::ostringstream req;
        req << R"({"cmd":"ping","id":"g)" << index << "-" << r
            << R"("})";
        client.sendLine(req.str());
    }
    double last_seq = 0.0;
    for (int r = 0; r < requests; ++r) {
        std::string line;
        if (!client.readLine(line)) {
            tally.violations.fetch_add(
                static_cast<std::uint64_t>(requests - r));
            return; // EOF early: every missing response is lost
        }
        Result<JsonValue> doc = parseJson(line);
        if (!doc.ok()) {
            tally.violations.fetch_add(1);
            continue;
        }
        ++tally.responses;
        const JsonValue &v = doc.value();
        std::ostringstream want;
        want << "g" << index << "-" << r;
        const JsonValue *id = v.find("id");
        if (id == nullptr || id->string() != want.str())
            tally.violations.fetch_add(1); // misrouted / duplicated
        if (v.find("seq")->number() <= last_seq)
            tally.violations.fetch_add(1); // order broken
        last_seq = v.find("seq")->number();
    }
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    unsigned single_n = args.getUint("single", 150);
    unsigned per_client = args.getUint("per-client", 40);
    std::string out_path =
        args.get("out", "BENCH_serve_resilience.json");

    std::cout << "=== Connection supervisor: resilience and "
                 "multi-client throughput ===\n";
    std::cout << "hardware threads: "
              << std::thread::hardware_concurrency() << "\n\n";

    JsonWriter json;
    json.field("bench", "ext_serve_resilience");
    json.field("hardware_threads",
               static_cast<std::uint64_t>(
                   std::thread::hardware_concurrency()));

    std::ostringstream sock_os;
    sock_os << "/tmp/gm_bench_serve_" << ::getpid() << ".sock";
    const std::string sock_path = sock_os.str();

    resetServeDrain();
    EngineSession engine;
    SupervisorOptions options;
    options.dispatchers = 2;
    options.includeOutput = false;
    options.maxLineBytes = kChaosLineCap;
    Result<SupervisorSummary> served{SupervisorSummary{}};
    std::thread server([&] {
        served = serveSupervised(engine, sock_path, options);
    });

    // ---- 1. warm handle baseline -----------------------------------
    // Same measurement as BENCH_serve.json "warm": direct handle() on
    // the warm session, no socket. Anchors the socket-path numbers.
    Result<Request> warm_req = requestFromJson(kWarmRequest);
    if (!warm_req.ok())
        fatal(warm_req.status().toString());
    Response cold = engine.handle(warm_req.value());
    if (!cold.ok())
        fatal(msg("cold request failed: ", cold.status.toString()));
    std::vector<double> handle_lat;
    for (int i = 0; i < 200; ++i) {
        auto t0 = clock_type::now();
        Response resp = engine.handle(warm_req.value());
        handle_lat.push_back(toMs(clock_type::now() - t0));
        if (!resp.ok())
            fatal("warm handle failed");
    }
    double handle_p50 = percentile(handle_lat, 50.0);
    json.beginObject("warm_handle");
    json.field("p50_ms", handle_p50);
    json.field("p99_ms", percentile(handle_lat, 99.0));
    json.endObject();

    // ---- 2 + 3. single connection vs 8 windowed clients ------------
    // kTrials PAIRED passes: each trial runs the synchronous
    // single-connection pass immediately followed by the multi-client
    // pass, so both sides of the comparison see the same machine
    // conditions — a noisy neighbor depresses the pair, not one side
    // (this gate runs on one-core CI boxes where a lone pass is at
    // the scheduler's mercy). The recorded rates come from the
    // best-speedup pair; latency percentiles pool every trial.
    //
    // Multi clients keep kWindow requests outstanding (the load the
    // supervisor exists for); their latency is send-to-response per
    // request, so queueing under contention is part of the number.
    constexpr int kTrials = 4;
    constexpr unsigned kWindow = 6;
    double single_rate = 0.0, single_p50, single_p99;
    double multi_rate = 0.0, multi_p50, multi_p99;
    {
        Client single_client(sock_path);
        roundTrip(single_client, kWarmRequest); // prime
        std::vector<std::unique_ptr<Client>> clients;
        for (int c = 0; c < kMultiClients; ++c) {
            clients.push_back(std::make_unique<Client>(sock_path));
            roundTrip(*clients.back(), kWarmRequest);
        }

        auto single_pass = [&](std::vector<double> &lat) {
            auto t0 = clock_type::now();
            for (unsigned i = 0; i < single_n; ++i)
                lat.push_back(roundTrip(single_client, kWarmRequest));
            return 1000.0 * single_n /
                   toMs(clock_type::now() - t0);
        };
        auto multi_pass = [&](std::vector<double> &all) {
            std::vector<std::vector<double>> lat(kMultiClients);
            std::vector<std::thread> threads;
            auto t0 = clock_type::now();
            for (int c = 0; c < kMultiClients; ++c) {
                threads.emplace_back([&, c] {
                    Client &client =
                        *clients[static_cast<std::size_t>(c)];
                    std::deque<clock_type::time_point> sent;
                    unsigned issued = 0, answered = 0;
                    while (answered < per_client) {
                        while (issued < per_client &&
                               sent.size() < kWindow) {
                            sent.push_back(clock_type::now());
                            client.sendLine(kWarmRequest);
                            ++issued;
                        }
                        std::string line;
                        if (!client.readLine(line))
                            fatal("multi-client connection closed "
                                  "early");
                        Result<JsonValue> doc = parseJson(line);
                        if (!doc.ok() ||
                            !doc.value().find("ok")->boolean())
                            fatal(msg("multi-client request failed: ",
                                      line));
                        lat[static_cast<std::size_t>(c)].push_back(
                            toMs(clock_type::now() - sent.front()));
                        sent.pop_front();
                        ++answered;
                    }
                });
            }
            for (auto &t : threads)
                t.join();
            double wall = toMs(clock_type::now() - t0);
            std::size_t count = 0;
            for (const auto &per : lat) {
                all.insert(all.end(), per.begin(), per.end());
                count += per.size();
            }
            return 1000.0 * static_cast<double>(count) / wall;
        };

        std::vector<double> single_lat, multi_lat;
        double best_speedup = 0.0;
        for (int trial = 0; trial < kTrials; ++trial) {
            double s = single_pass(single_lat);
            double m = multi_pass(multi_lat);
            if (m / s > best_speedup) {
                best_speedup = m / s;
                single_rate = s;
                multi_rate = m;
            }
        }
        single_p50 = percentile(single_lat, 50.0);
        single_p99 = percentile(single_lat, 99.0);
        multi_p50 = percentile(multi_lat, 50.0);
        multi_p99 = percentile(multi_lat, 99.0);
    }
    json.beginObject("single");
    json.field("requests",
               static_cast<std::uint64_t>(single_n * kTrials));
    json.field("req_per_s", single_rate);
    json.field("p50_ms", single_p50);
    json.field("p99_ms", single_p99);
    json.endObject();
    json.beginObject("multi");
    json.field("clients", static_cast<std::uint64_t>(kMultiClients));
    json.field("requests_per_client",
               static_cast<std::uint64_t>(per_client * kTrials));
    json.field("window", static_cast<std::uint64_t>(kWindow));
    json.field("req_per_s", multi_rate);
    json.field("p50_ms", multi_p50);
    json.field("p99_ms", multi_p99);
    json.field("speedup_vs_single", multi_rate / single_rate);
    // Thread-scaling claim: vacuous on a 1-thread machine, where it
    // records "skipped" rather than a hollow "pass".
    json.field("throughput_gate",
               threadScalingGate(multi_rate >= single_rate));
    json.endObject();

    Table rate_table({"phase", "req/s", "p50 ms", "p99 ms"});
    rate_table.addRow({"handle (no socket)", "-",
                       fmtDouble(handle_p50, 3),
                       fmtDouble(percentile(handle_lat, 99.0), 3)});
    rate_table.addRow({"single connection",
                       fmtDouble(single_rate, 0),
                       fmtDouble(single_p50, 3),
                       fmtDouble(single_p99, 3)});
    rate_table.addRow({"8 clients", fmtDouble(multi_rate, 0),
                       fmtDouble(multi_p50, 3),
                       fmtDouble(multi_p99, 3)});
    rate_table.print(std::cout);

    // The supervisor exists to serve many clients at least as well as
    // one: concurrent intake must never cost throughput. The claim
    // needs real parallelism, so on a 1-hardware-thread machine the
    // gate is skipped (and recorded as such above), not enforced.
    if (std::thread::hardware_concurrency() <= 1) {
        std::cout << "throughput gate skipped: 1 hardware thread\n";
    } else if (multi_rate < single_rate) {
        fatal(msg("multi-client throughput regressed below the "
                  "single-connection rate: ",
                  multi_rate, " < ", single_rate, " req/s"));
    }

    // ---- 4. chaos --------------------------------------------------
    constexpr int kGood = 4, kGoodRequests = 25;
    ChaosTally tally;
    {
        std::vector<std::thread> threads;
        for (int g = 0; g < kGood; ++g) {
            threads.emplace_back([&, g] {
                chaosGoodClient(sock_path, g, kGoodRequests, tally);
            });
        }
        threads.emplace_back([&] { // garbage + vanish mid-line
            Client client(sock_path);
            for (int i = 0; i < 10; ++i)
                client.sendLine("chaos garbage {{{");
            client.sendRaw(R"({"cmd":"mo)");
            client.disconnect();
        });
        threads.emplace_back([&] { // oversized: expect eviction
            Client client(sock_path);
            client.sendRaw(std::string(kChaosLineCap * 2, 'x'));
            std::string line;
            while (client.readLine(line)) {
            } // drain until the supervisor hangs up
        });
        for (auto &t : threads)
            t.join();
    }
    std::cout << "\nchaos: " << tally.responses.load()
              << " verified responses alongside garbage/oversized/"
                 "disconnecting clients, "
              << tally.violations.load() << " violations\n";
    json.beginObject("chaos");
    json.field("good_clients", static_cast<std::uint64_t>(kGood));
    json.field("verified_responses", tally.responses.load());
    json.field("violations", tally.violations.load());
    json.endObject();
    if (tally.violations.load() != 0)
        fatal("chaos phase lost, duplicated, or misrouted responses");
    if (tally.responses.load() !=
        static_cast<std::uint64_t>(kGood * kGoodRequests))
        fatal("chaos phase response count mismatch");

    // ---- 5. drain with work in flight ------------------------------
    constexpr int kDrainBatch = 4;
    {
        Client client(sock_path);
        client.sendLine(
            R"({"cmd":"suite","suite":"micro","predict":true,)"
            R"("config":{"warps":4,"cores":2},)"
            R"("inject":"micro_write_burst:collect:1:200","id":"d0"})");
        for (int i = 1; i < kDrainBatch; ++i) {
            std::ostringstream req;
            req << R"({"cmd":"ping","id":"d)" << i << R"("})";
            client.sendLine(req.str());
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        requestServeDrain();
        int answered = 0;
        std::string line;
        while (client.readLine(line))
            ++answered;
        if (answered != kDrainBatch)
            fatal(msg("drain answered ", answered, " of ",
                      kDrainBatch, " in-flight requests"));
        json.beginObject("drain");
        json.field("in_flight",
                   static_cast<std::uint64_t>(kDrainBatch));
        json.field("answered",
                   static_cast<std::uint64_t>(answered));
        json.field("clean", true);
        json.endObject();
        std::cout << "drain: " << answered << "/" << kDrainBatch
                  << " in-flight requests answered, clean EOF\n";
    }

    server.join();
    resetServeDrain();
    if (!served.ok())
        fatal(msg("supervisor failed: ", served.status().toString()));
    const SupervisorSummary &s = served.value();
    json.beginObject("summary");
    json.field("connections", s.connections);
    json.field("evaluated", s.evaluated);
    json.field("shed", s.shed);
    json.field("malformed", s.malformed);
    json.field("dropped", s.dropped);
    json.field("oversized_evictions", s.oversized);
    json.endObject();

    std::ofstream out(out_path);
    if (!out)
        fatal(msg("cannot open ", out_path, " for writing"));
    out << json.finish() << "\n";
    std::cout << "\nwrote " << out_path << "\n";
    return 0;
}
