/**
 * @file
 * Serving-layer bench: cold-start cost vs warm steady state.
 *
 * The engine/front-end split exists so a long-lived service amortizes
 * input building (trace generation, collection, per-warp profiling)
 * across requests. This bench measures that contract end to end:
 *
 *  1. cold start — first `model` request on a fresh EngineSession,
 *     which must build every input stage;
 *  2. warm repeats — the same request against the warm session. Every
 *     repeat is asserted model-only (zero trace/collector/profiler
 *     cache misses in the per-response counters) and bit-identical to
 *     the cold output before its latency counts. Reported as
 *     p50/p99/mean over many repeats;
 *  3. sustained daemon throughput — a JSON-lines batch cycling over
 *     the micro suite at two configs, driven through serveLines (the
 *     gpumech_serve intake/dispatch path including request parsing
 *     and response serialization) on a pre-warmed engine.
 *
 * Results go to stdout as a table and to BENCH_serve.json (override
 * with --out) so the perf trajectory is tracked across PRs.
 *
 * Options: --warm N (warm repeats, default 200)
 *          --batch N (sustained-throughput requests, default 200)
 *          --out FILE (JSON output path, default BENCH_serve.json)
 */

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/args.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "service/engine_session.hh"
#include "service/request.hh"
#include "service/serve_loop.hh"

using namespace gpumech;

namespace
{

using clock_type = std::chrono::steady_clock;

double
toMs(clock_type::duration d)
{
    return std::chrono::duration<double, std::milli>(d).count();
}

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    std::sort(sorted.begin(), sorted.end());
    std::size_t at = static_cast<std::size_t>(
        (sorted.size() - 1) * p / 100.0);
    return sorted[at];
}

Request
modelRequest(const std::string &kernel)
{
    Request req;
    req.verb = Verb::Model;
    req.kernel = kernel;
    return req;
}

/** Fails the bench unless the response was served model-only. */
void
assertModelOnly(const Response &resp, const char *what)
{
    if (!resp.ok())
        fatal(msg(what, " failed: ", resp.status.toString()));
    if (resp.stats.traceMisses != 0 ||
        resp.stats.collectorMisses != 0 ||
        resp.stats.profilerMisses != 0) {
        fatal(msg(what, " rebuilt inputs: warm repeats must be "
                        "model-only (trace ",
                  resp.stats.traceMisses, ", collector ",
                  resp.stats.collectorMisses, ", profiler ",
                  resp.stats.profilerMisses, " misses)"));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    unsigned warm_reps = args.getUint("warm", 200);
    unsigned batch_n = args.getUint("batch", 200);
    std::string out_path = args.get("out", "BENCH_serve.json");

    std::cout << "=== Serving layer: cold start vs warm steady "
                 "state ===\n";
    std::cout << "hardware threads: "
              << std::thread::hardware_concurrency() << "\n\n";

    JsonWriter json;
    json.field("bench", "ext_serve");
    json.field("hardware_threads",
               static_cast<std::uint64_t>(
                   std::thread::hardware_concurrency()));

    // ---- 1. cold start ---------------------------------------------
    const std::string kernel = "srad_kernel1";
    EngineSession engine;
    Request req = modelRequest(kernel);

    auto t0 = clock_type::now();
    Response cold = engine.handle(req);
    double cold_ms = toMs(clock_type::now() - t0);
    if (!cold.ok())
        fatal(msg("cold request failed: ", cold.status.toString()));
    if (cold.stats.profilerMisses == 0)
        fatal("cold request unexpectedly hit a warm cache");

    json.beginObject("cold");
    json.field("kernel", kernel);
    json.field("cold_ms", cold_ms);
    json.endObject();

    // ---- 2. warm repeats -------------------------------------------
    std::vector<double> lat;
    lat.reserve(warm_reps);
    for (unsigned r = 0; r < warm_reps; ++r) {
        auto w0 = clock_type::now();
        Response warm = engine.handle(req);
        lat.push_back(toMs(clock_type::now() - w0));
        assertModelOnly(warm, "warm repeat");
        if (warm.output != cold.output)
            fatal("warm repeat diverged from cold output");
    }
    double p50 = percentile(lat, 50.0);
    double p99 = percentile(lat, 99.0);
    double mean = 0.0;
    for (double ms : lat)
        mean += ms;
    mean /= static_cast<double>(lat.size());

    Table warm_table({"phase", "ms", "speedup"});
    warm_table.addRow({"cold", fmtDouble(cold_ms, 3), "1.00"});
    warm_table.addRow({"warm p50", fmtDouble(p50, 3),
                       fmtDouble(cold_ms / p50, 0)});
    warm_table.addRow({"warm p99", fmtDouble(p99, 3),
                       fmtDouble(cold_ms / p99, 0)});
    std::cout << "-- model " << kernel << ": cold vs " << warm_reps
              << " warm repeats (model-only verified) --\n";
    warm_table.print(std::cout);

    json.beginObject("warm");
    json.field("reps", static_cast<std::uint64_t>(warm_reps));
    json.field("model_only", true);
    json.field("p50_ms", p50);
    json.field("p99_ms", p99);
    json.field("mean_ms", mean);
    json.field("speedup_p50_vs_cold", cold_ms / p50);
    json.endObject();

    // ---- 3. sustained daemon throughput ----------------------------
    // The full intake/dispatch path: JSON parsing, bounded queue,
    // response serialization. Mixed kernels and configs, pre-warmed
    // so the measured pass is the service's steady state.
    const char *mixed[] = {"micro_stream", "micro_compute_chain",
                           "micro_pointer_chase", "micro_sfu_heavy"};
    std::ostringstream batch;
    for (unsigned i = 0; i < batch_n; ++i) {
        batch << R"({"cmd":"model","kernel":")"
              << mixed[i % (sizeof(mixed) / sizeof(mixed[0]))]
              << R"(","config":{"warps":)" << (i % 2 ? 8 : 4)
              << R"(,"cores":2}})" << "\n";
    }

    EngineSession daemon;
    ServeOptions serve_options;
    serve_options.includeOutput = false;
    // Admission control is not under test here: the queue must admit
    // the whole flood or the shed requests would deflate the rate.
    serve_options.maxQueue = batch_n;
    auto run_batch = [&] {
        resetServeDrain();
        std::istringstream in(batch.str());
        std::ostringstream sink;
        return serveLines(daemon, in, sink, serve_options);
    };
    ServeSummary warmup = run_batch();
    if (warmup.evaluated != batch_n || warmup.failed != 0)
        fatal(msg("warm-up batch: ", warmup.evaluated, " evaluated (",
                  warmup.failed, " failed, ", warmup.shed,
                  " shed) of ", warmup.received));

    auto b0 = clock_type::now();
    ServeSummary steady = run_batch();
    double batch_ms = toMs(clock_type::now() - b0);
    if (steady.evaluated != batch_n || steady.failed != 0)
        fatal(msg("steady batch: ", steady.failed, " of ",
                  steady.received, " requests failed"));
    double req_per_s = 1000.0 * batch_n / batch_ms;

    std::cout << "\n-- sustained JSON-lines throughput (" << batch_n
              << " warm requests, 4 kernels x 2 configs) --\n";
    Table rate_table({"requests", "wall ms", "req/s"});
    rate_table.addRow({std::to_string(batch_n),
                       fmtDouble(batch_ms, 1),
                       fmtDouble(req_per_s, 0)});
    rate_table.print(std::cout);

    json.beginObject("sustained");
    json.field("requests", static_cast<std::uint64_t>(batch_n));
    json.field("wall_ms", batch_ms);
    json.field("req_per_s", req_per_s);
    json.endObject();

    std::ofstream out(out_path);
    out << json.finish() << "\n";
    std::cout << "\nwrote " << out_path << "\n";
    return 0;
}
