/**
 * @file
 * Extension experiment: parallel per-warp interval profiling.
 *
 * Section VI-D notes the interval algorithm "can be further increased
 * by running the interval algorithm of each warp in parallel, but we
 * did not explore this option". This bench explores it: it times the
 * per-warp profiling phase serially and with increasing thread counts
 * and verifies the results are identical.
 */

#include <benchmark/benchmark.h>

#include "collector/input_collector.hh"
#include "core/interval_builder.hh"
#include "workloads/workload.hh"

using namespace gpumech;

namespace
{

struct Fixture
{
    Fixture()
        : config(HardwareConfig::baseline()),
          kernel(workloadByName("srad_kernel1").generate(config)),
          inputs(collectInputs(kernel, config))
    {}

    HardwareConfig config;
    KernelTrace kernel;
    CollectorResult inputs;
};

Fixture &
fixture()
{
    static Fixture f;
    return f;
}

void
BM_ProfileSerial(benchmark::State &state)
{
    Fixture &f = fixture();
    for (auto _ : state) {
        auto profiles = buildAllProfiles(f.kernel, f.inputs, f.config);
        benchmark::DoNotOptimize(profiles.size());
    }
    state.SetLabel("512 warps");
}

void
BM_ProfileParallel(benchmark::State &state)
{
    Fixture &f = fixture();
    auto threads = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        auto profiles = buildAllProfilesParallel(f.kernel, f.inputs,
                                                 f.config, threads);
        benchmark::DoNotOptimize(profiles.size());
    }
    state.SetLabel(std::to_string(threads) + " threads");
}

} // namespace

BENCHMARK(BM_ProfileSerial)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ProfileParallel)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK_MAIN();
