/**
 * @file
 * Extension experiment: end-to-end scaling of the parallel evaluation
 * engine.
 *
 * Section VI-D notes the interval algorithm "can be further increased
 * by running the interval algorithm of each warp in parallel, but we
 * did not explore this option". This bench explores it end to end:
 *
 *  1. per-warp interval profiling of one kernel, serial vs the shared
 *     pool at 1/2/4/8 threads (the original micro-measurement);
 *  2. model-only suite prediction (predictSuite) over an MSHR sweep,
 *     at 1/2/4/8 threads, with and without the shared input cache —
 *     the design-space-exploration workload the cache targets;
 *  3. observability overhead: the stress suite predicted with metrics
 *     and span tracing fully on vs fully off. The layer's contract is
 *     near-zero cost, so the bench fails if the enabled run costs more
 *     than 2% — and the enabled run's metrics snapshot feeds a
 *     "stages" stage-attribution object into the JSON output.
 *
 * Every parallel/cached result is verified identical to the serial
 * uncached baseline before times are reported. Results go to stdout
 * as a table and to BENCH_parallel.json (override with --out) so the
 * perf trajectory is tracked across PRs.
 *
 * Options: --reps N (timing repetitions, default 3; best-of is kept)
 *          --out FILE (JSON output path, default BENCH_parallel.json)
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "gates.hh"

#include "common/args.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "common/trace_span.hh"
#include "core/interval_builder.hh"
#include "harness/experiment.hh"
#include "workloads/workload.hh"

using namespace gpumech;

namespace
{

using clock_type = std::chrono::steady_clock;

double
toMs(clock_type::duration d)
{
    return std::chrono::duration<double, std::milli>(d).count();
}

/** Best-of-@p reps wall-clock time of fn(), in milliseconds. */
template <typename Fn>
double
timeMs(unsigned reps, Fn &&fn)
{
    double best = 0.0;
    for (unsigned r = 0; r < reps; ++r) {
        auto t0 = clock_type::now();
        fn();
        double ms = toMs(clock_type::now() - t0);
        if (r == 0 || ms < best)
            best = ms;
    }
    return best;
}

bool
sameProfiles(const std::vector<IntervalProfile> &a,
             const std::vector<IntervalProfile> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t w = 0; w < a.size(); ++w) {
        if (a[w].warpId != b[w].warpId ||
            a[w].intervals.size() != b[w].intervals.size())
            return false;
        for (std::size_t i = 0; i < a[w].intervals.size(); ++i) {
            const Interval &x = a[w].intervals[i];
            const Interval &y = b[w].intervals[i];
            if (x.numInsts != y.numInsts ||
                x.stallCycles != y.stallCycles ||
                x.mshrReqs != y.mshrReqs || x.dramReqs != y.dramReqs)
                return false;
        }
    }
    return true;
}

bool
sameResults(const std::vector<GpuMechResult> &a,
            const std::vector<GpuMechResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].cpi != b[i].cpi || a[i].ipc != b[i].ipc ||
            a[i].repWarpIndex != b[i].repWarpIndex)
            return false;
    }
    return true;
}

const std::vector<unsigned> &
threadCounts()
{
    static const std::vector<unsigned> counts = {1, 2, 4, 8};
    return counts;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    unsigned reps = args.getUint("reps", 3);
    std::string out_path = args.get("out", "BENCH_parallel.json");

    std::cout << "=== Parallel evaluation engine: scaling bench ===\n";
    std::cout << "hardware threads: "
              << std::thread::hardware_concurrency() << ", reps: "
              << reps << " (best-of)\n\n";

    JsonWriter json;
    json.field("bench", "ext_parallel_profiling");
    json.field("hardware_threads",
               static_cast<std::uint64_t>(
                   std::thread::hardware_concurrency()));

    // ---- 1. per-warp interval profiling of one kernel --------------
    HardwareConfig config = HardwareConfig::baseline();
    KernelTrace kernel =
        workloadByName("srad_kernel1").generate(config);
    CollectorResult inputs = collectInputs(kernel, config);

    auto serial_profiles = buildAllProfiles(kernel, inputs, config);
    double serial_ms = timeMs(reps, [&] {
        auto p = buildAllProfiles(kernel, inputs, config);
    });

    Table prof_table({"threads", "ms", "speedup", "identical"});
    prof_table.addRow({"serial", fmtDouble(serial_ms, 2), "1.00",
                       "-"});
    json.beginObject("profiling");
    json.field("kernel", "srad_kernel1");
    json.field("warps", static_cast<std::uint64_t>(kernel.numWarps()));
    json.field("serial_ms", serial_ms);
    double prof_t4_ms = serial_ms;
    for (unsigned t : threadCounts()) {
        setDefaultJobs(t);
        auto check =
            buildAllProfilesParallel(kernel, inputs, config, t);
        bool same = sameProfiles(check, serial_profiles);
        if (!same)
            fatal(msg("parallel profiling diverged at ", t,
                      " threads"));
        double ms = timeMs(reps, [&] {
            auto p = buildAllProfilesParallel(kernel, inputs, config, t);
        });
        if (t == 4)
            prof_t4_ms = ms;
        prof_table.addRow({std::to_string(t), fmtDouble(ms, 2),
                           fmtDouble(serial_ms / ms, 2), "yes"});
        json.field(msg("t", t, "_ms"), ms);
    }
    json.field("speedup_t4", serial_ms / prof_t4_ms);
    json.endObject();

    std::cout << "-- per-warp interval profiling (srad_kernel1, "
              << kernel.numWarps() << " warps) --\n";
    prof_table.print(std::cout);

    // ---- 2. suite prediction over an MSHR sweep --------------------
    // Model-only prediction (the use case the paper's 97x speedup
    // serves). The sweep varies MSHR count only, so with the input
    // cache enabled, every point after the first reuses each kernel's
    // trace, collector result, and warp profiles.
    std::vector<Workload> suite;
    for (const char *name :
         {"srad_kernel1", "cfd_step_factor", "kmeans_invert_mapping",
          "vectorAdd", "sgemm_tiled"}) {
        suite.push_back(workloadByName(name));
    }
    std::vector<HardwareConfig> points;
    for (std::uint32_t mshrs : {8u, 16u, 32u, 64u}) {
        HardwareConfig p = HardwareConfig::baseline();
        p.numMshrs = mshrs;
        points.push_back(p);
    }

    auto run_suite = [&](unsigned jobs, bool cached) {
        InputCache cache;
        std::vector<GpuMechResult> all;
        for (const HardwareConfig &point : points) {
            auto r = predictSuite(suite, point, GpuMechOptions{}, jobs,
                                  cached ? &cache : nullptr);
            for (const KernelPrediction &p : r) {
                p.status.orDie();
                all.push_back(p.result);
            }
        }
        return all;
    };

    setDefaultJobs(1);
    auto baseline_results = run_suite(1, false);
    double suite_serial_ms = timeMs(reps, [&] { run_suite(1, false); });

    Table suite_table(
        {"threads", "cache", "ms", "speedup", "identical"});
    suite_table.addRow({"serial", "off", fmtDouble(suite_serial_ms, 2),
                        "1.00", "-"});

    json.beginObject("suite");
    json.field("kernels", static_cast<std::uint64_t>(suite.size()));
    json.field("sweep_points",
               static_cast<std::uint64_t>(points.size()));
    json.field("sweep_param", "mshrs 8/16/32/64");
    json.field("serial_nocache_ms", suite_serial_ms);

    double speedup_t4_cache = 0.0;
    for (bool cached : {false, true}) {
        for (unsigned t : threadCounts()) {
            setDefaultJobs(t);
            auto check = run_suite(t, cached);
            if (!sameResults(check, baseline_results))
                fatal(msg("suite prediction diverged (", t,
                          " threads, cache ",
                          cached ? "on" : "off", ")"));
            double ms =
                timeMs(reps, [&] { run_suite(t, cached); });
            double speedup = suite_serial_ms / ms;
            if (cached && t == 4)
                speedup_t4_cache = speedup;
            suite_table.addRow({std::to_string(t),
                                cached ? "on" : "off",
                                fmtDouble(ms, 2),
                                fmtDouble(speedup, 2), "yes"});
            json.field(msg(cached ? "cache" : "nocache", "_t", t,
                           "_ms"),
                       ms);
        }
    }
    json.field("speedup_t4_cache_vs_serial", speedup_t4_cache);
    // Thread-scaling claim: vacuous on a 1-thread machine, where it
    // records "skipped" rather than a hollow "pass".
    json.field("speedup_gate",
               threadScalingGate(speedup_t4_cache >= 1.0));
    json.endObject();
    setDefaultJobs(0);

    std::cout << "\n-- suite prediction: " << suite.size()
              << " kernels x " << points.size()
              << " MSHR sweep points --\n";
    suite_table.print(std::cout);
    std::cout << "\nheadline: 4-thread cached sweep is "
              << fmtDouble(speedup_t4_cache, 2)
              << "x the serial uncached baseline (cache removes "
                 "repeated trace generation, cache simulation and "
                 "warp profiling; threads add on multi-core hosts).\n";

    // ---- 3. observability overhead on the stress suite -------------
    // Model-only prediction of the whole stress suite with metrics and
    // span tracing fully on vs fully off. The layer's contract is one
    // relaxed load + branch when off and shard-local writes when on;
    // neither may move the needle on real work, so >= 2% fails the
    // bench. Best-of timing keeps scheduler noise out of the ratio.
    std::vector<Workload> stress = suiteByName("stress").valueOrDie();
    HardwareConfig stress_cfg = HardwareConfig::baseline();
    auto run_stress = [&] {
        InputCache cache;
        auto r = predictSuite(stress, stress_cfg, GpuMechOptions{}, 4,
                              &cache);
        for (const KernelPrediction &p : r)
            p.status.orDie();
    };
    setDefaultJobs(4);
    double off_ms = timeMs(reps, run_stress);
    Metrics::enable(true);
    TraceLog::enable(true);
    Metrics::reset();
    TraceLog::clear();
    double on_ms = timeMs(reps, run_stress);
    std::vector<MetricSnapshot> snap = Metrics::snapshot();
    std::size_t num_events = TraceLog::collect().size();
    Metrics::enable(false);
    TraceLog::enable(false);
    setDefaultJobs(0);

    double overhead = off_ms > 0.0 ? (on_ms - off_ms) / off_ms : 0.0;
    std::cout << "\n-- observability overhead (stress suite, "
              << stress.size() << " kernels, metrics+tracing) --\n";
    Table obs_table({"observability", "ms"});
    obs_table.addRow({"off", fmtDouble(off_ms, 2)});
    obs_table.addRow({"on", fmtDouble(on_ms, 2)});
    obs_table.print(std::cout);
    std::cout << "overhead: " << fmtPercent(overhead) << " ("
              << num_events << " spans buffered)\n";

    json.beginObject("observability");
    json.field("suite", "stress");
    json.field("off_ms", off_ms);
    json.field("on_ms", on_ms);
    json.field("overhead", overhead);
    json.field("spans", static_cast<std::uint64_t>(num_events));
    // Stage attribution from the enabled run: where the wall time of
    // the last timed repetition's pipeline actually went.
    json.beginObject("stages");
    for (const MetricSnapshot &m : snap) {
        if (m.name.rfind("stage.", 0) != 0 ||
            m.kind != MetricKind::Histogram || m.hist.count == 0)
            continue;
        json.beginObject(m.name);
        json.field("count", m.hist.count);
        json.field("total_ms", m.hist.sum);
        json.field("mean_ms", m.hist.mean());
        json.endObject();
    }
    json.endObject();
    json.endObject();

    if (overhead >= 0.02)
        fatal(msg("observability overhead ", fmtPercent(overhead),
                  " exceeds the 2% budget"));

    std::ofstream out(out_path);
    if (!out)
        fatal(msg("cannot open ", out_path, " for writing"));
    out << json.finish() << "\n";
    std::cout << "\nwrote " << out_path << "\n";
    return 0;
}
