/**
 * @file
 * Extension experiment: predicted vs measured CPI stacks.
 *
 * The paper validates GPUMech's total CPI and uses the CPI stack for
 * qualitative bottleneck analysis (Section VII); the stack itself is
 * never validated because Macsim reports no comparable breakdown.
 * Our oracle attributes every non-issue cycle to its dominant
 * blocking reason (memory dependence, fixed-latency dependence, MSHR
 * exhaustion, SFU occupancy), so the model's stack can be checked
 * category by category:
 *
 *   model BASE                    <-> 1 issue cycle per instruction
 *   model DEP                     <-> measured compute-dependence
 *   model L1+L2+DRAM+QUEUE        <-> measured load-wait stalls
 *   model MSHR                    <-> measured MSHR-blocked stalls
 */

#include <iostream>

#include "common/table.hh"
#include "harness/experiment.hh"

using namespace gpumech;

int
main()
{
    HardwareConfig config = HardwareConfig::baseline();
    std::cout << "=== Extension: predicted vs measured CPI stacks "
                 "===\n";
    std::cout << "config: " << config.summary() << "\n\n";

    const std::vector<std::string> kernels = {
        "micro_compute_chain", "cfd_step_factor", "cfd_compute_flux",
        "kmeans_invert_mapping", "srad_kernel1", "sgemm_tiled"};

    Table t({"kernel", "category", "model CPI", "measured CPI"});
    for (const auto &name : kernels) {
        StackEvaluation eval = evaluateStack(
            workloadByName(name), config, SchedulingPolicy::RoundRobin);
        const CpiStack &s = eval.model.stack;
        const TimingStats &o = eval.oracle;

        double model_mem = s[StallType::L1] + s[StallType::L2] +
                           s[StallType::Dram] + s[StallType::Queue];
        t.addRow({name, "BASE", fmtDouble(s[StallType::Base], 2),
                  "1.00"});
        t.addRow({"", "DEP", fmtDouble(s[StallType::Dep], 2),
                  fmtDouble(o.computeStallCpi(), 2)});
        t.addRow({"", "mem (L1+L2+DRAM+QUEUE)", fmtDouble(model_mem, 2),
                  fmtDouble(o.memStallCpi(), 2)});
        t.addRow({"", "MSHR", fmtDouble(s[StallType::Mshr], 2),
                  fmtDouble(o.mshrStallCpi(), 2)});
        t.addRow({"", "total", fmtDouble(s.total(), 2),
                  fmtDouble(o.cpi(), 2)});
    }
    t.print(std::cout);

    std::cout << "\nexpected shape: totals agree (that is Fig. 11's "
                 "claim) and the dominant category matches for "
                 "compute- and MSHR-bound kernels. Attribution "
                 "caveat: when DRAM queuing delays fills, MSHR "
                 "entries are held longer and the oracle's proximate "
                 "cause is 'MSHR full' while the model's root cause "
                 "is QUEUE (kmeans_invert_mapping) — compare "
                 "mem+MSHR+QUEUE as one pool for such kernels.\n";
    return 0;
}
