/**
 * @file
 * Figure 14 reproduction: average model error with {64, 96, 128, 256}
 * MSHR entries, round-robin policy, over all evaluation kernels.
 *
 * Paper shape: with more MSHR entries the MSHR queuing shrinks (MT vs
 * MT_MSHR gap narrows) but more in-flight requests congest DRAM, so
 * only MT_MSHR_BAND tracks the oracle as entries grow.
 */

#include <iostream>

#include "common/args.hh"
#include "common/thread_pool.hh"
#include "harness/sweep.hh"

using namespace gpumech;

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    if (args.has("jobs"))
        setDefaultJobs(args.getUint("jobs", 0));
    bool verbose = args.has("verbose") || args.has("v");
    std::cout << "=== Figure 14: error vs MSHR entries (RR) ===\n\n";

    std::vector<SweepPoint> points;
    for (std::uint32_t mshrs : {64u, 96u, 128u, 256u}) {
        HardwareConfig config = HardwareConfig::baseline();
        config.numMshrs = mshrs;
        points.push_back({std::to_string(mshrs) + " MSHRs", config});
    }

    SweepResult result = runSweep(evaluationWorkloads(), points,
                                  SchedulingPolicy::RoundRobin, verbose);
    if (args.has("csv")) {
        printSweepCsv(std::cout, result);
        return 0;
    }
    printSweep(std::cout, result);

    std::cout << "\npaper shape: every model except MT_MSHR_BAND gets "
                 "worse as MSHR entries increase (DRAM congestion "
                 "grows).\n";
    return 0;
}
