/**
 * @file
 * Figure 4 reproduction: the error of an SRAD kernel with divergent
 * memory accesses under progressively complete models —
 * Naive_Interval, MT, MT_MSHR, MT_MSHR_BAND — against the detailed
 * timing simulation (round-robin policy, Table I configuration).
 */

#include <iostream>

#include "common/table.hh"
#include "harness/experiment.hh"

using namespace gpumech;

int
main()
{
    HardwareConfig config = HardwareConfig::baseline();
    std::cout << "=== Figure 4: SRAD case study ===\n";
    std::cout << "config: " << config.summary() << "\n\n";

    const Workload &srad = workloadByName("srad_kernel1");
    KernelEvaluation eval =
        evaluateKernel(srad, config, SchedulingPolicy::RoundRobin);

    std::vector<std::string> labels;
    std::vector<double> errors;
    for (ModelKind kind :
         {ModelKind::NaiveInterval, ModelKind::MT, ModelKind::MT_MSHR,
          ModelKind::MT_MSHR_BAND}) {
        labels.push_back(toString(kind));
        errors.push_back(eval.error(kind));
    }

    Table t({"model", "predicted IPC", "oracle IPC", "error"});
    for (std::size_t i = 0; i < labels.size(); ++i) {
        ModelKind kind = i == 0 ? ModelKind::NaiveInterval
                        : i == 1 ? ModelKind::MT
                        : i == 2 ? ModelKind::MT_MSHR
                                 : ModelKind::MT_MSHR_BAND;
        t.addRow({labels[i], fmtDouble(eval.predictedIpc.at(kind), 4),
                  fmtDouble(eval.oracleIpc, 4),
                  fmtPercent(errors[i])});
    }
    t.print(std::cout);
    std::cout << "\n";
    printBarChart(std::cout, "error by model (lower is better)", labels,
                  errors);

    std::cout << "\npaper shape: error drops monotonically as MT, MSHR "
                 "and DRAM bandwidth modeling are added.\n";
    return 0;
}
